package core

import (
	"fmt"

	"agilemig/internal/cgroup"
	"agilemig/internal/guest"
	"agilemig/internal/mem"
	"agilemig/internal/metrics"
	"agilemig/internal/sim"
	"agilemig/internal/simnet"
	"agilemig/internal/trace"
)

type phase int

const (
	phaseLive    phase = iota // VM at source: pre-copy rounds / Agile round 1
	phaseSuspend              // VM suspended: stop-and-copy or switchover prep
	phasePush                 // VM at destination: active push + demand paging
	phaseDone
)

// Migration drives one live migration end to end. It models the Migration
// Manager threads on both hosts; because the simulation is single-threaded,
// one object can safely hold both ends' state, with the network flows
// between them carrying every byte that would cross the wire.
type Migration struct {
	eng  *sim.Engine
	net  *simnet.Network
	spec Spec
	tun  Tuning
	tech Technique

	vm       *guest.VM
	nPages   int
	srcTable *mem.Table
	srcGroup *cgroup.Group

	destTable *mem.Table
	destGroup *cgroup.Group

	pushFlow   *simnet.Flow // src -> dst: migration stream (pages, CPU state)
	demandFlow *simnet.Flow // src -> dst: demand-page responses
	ctrlFlow   *simnet.Flow // dst -> src: fault requests

	state         phase
	round         int
	cursor        mem.PageID
	prevRemaining int // dirty count at the previous round boundary
	// roundBM is the current pre-copy round's to-send set (or Agile round 1
	// = all pages). pushBM is the post-switchover push set.
	roundBM *mem.Bitmap
	pushBM  *mem.Bitmap
	// knownUntouched marks pages the destination may treat as zero pages
	// (Agile untouched records). offsetSent marks pages shipped by
	// reference, so the suspend step can detect stale references.
	knownUntouched *mem.Bitmap
	offsetSent     *mem.Bitmap

	faultInFlight     int // migration-driven swap-ins at the source
	scatterInFlight   int // scatter-gather: VMD writes in flight
	outstandingDemand int // demand responses in flight
	pendingDemand     map[mem.PageID][]func()
	srcDrained        bool
	switched          bool
	aborted           bool

	downtimeBase sim.Duration
	result       Result
	em           *trace.Emitter // per-VM scope on spec.Trace; nil records nothing

	// Span-layer state. rootSpan covers the whole migration; phaseSpan is
	// whichever phase is current (a pre-copy/Agile round, the stop-and-copy
	// scan, the scatter or push stream); stopSpan covers exactly the
	// VM-stopped window (Suspend -> Switchover), so its duration equals the
	// migration's contribution to DowntimeSeconds; cpuSpan is the CPU-state
	// transit inside it; residSpan is the post-drain residual demand window.
	sp        *trace.SpanEmitter
	rootSpan  trace.SpanID
	phaseSpan trace.SpanID
	stopSpan  trace.SpanID
	cpuSpan   trace.SpanID
	residSpan trace.SpanID
	// demandMeta tracks outstanding demand faults for span + latency
	// accounting (allocated only when spans or metrics are on; never
	// iterated, so map order cannot leak).
	demandMeta map[mem.PageID]demandTrack
	demandHist *metrics.Histogram
}

// demandTrack is the per-page demand-fault accounting record.
type demandTrack struct {
	span  trace.SpanID
	start sim.Time
}

// event records a trace event stamped with the current simulated time (a
// nil emitter costs one branch).
func (m *Migration) event(kind trace.Kind, format string, args ...interface{}) {
	m.em.Emitf(m.eng.NowSeconds(), kind, format, args...)
}

// beginRoundSpan opens the current live round's phase span (pre-copy
// rounds and Agile's single live round).
func (m *Migration) beginRoundSpan() {
	if m.sp.Enabled() {
		m.phaseSpan = m.sp.Begin(m.eng.NowSeconds(), "round", m.rootSpan,
			trace.Num("round", float64(m.round)))
	}
}

// beginStopSpans opens the VM-stopped window span and, inside it, the
// CPU-state transit span. Both end at switchover; the stopped span's
// duration is by construction this migration's DowntimeSeconds.
func (m *Migration) beginStopSpans() {
	if m.sp.Enabled() {
		now := m.eng.NowSeconds()
		m.stopSpan = m.sp.Begin(now, "stopped", m.rootSpan)
		m.cpuSpan = m.sp.Begin(now, "cpu-state", m.stopSpan)
	}
}

// finishDemand closes a demand fault's accounting: one latency observation
// and the fault's span. Safe when tracking is off or the page has no entry.
func (m *Migration) finishDemand(p mem.PageID) {
	if m.demandMeta == nil {
		return
	}
	dt, ok := m.demandMeta[p]
	if !ok {
		return
	}
	delete(m.demandMeta, p)
	m.demandHist.Observe(sim.Seconds(m.eng.Now()-dt.start, m.eng.TickLen()))
	m.sp.End(m.eng.NowSeconds(), dt.span)
}

// Start launches a migration and returns the handle. The VM must currently
// run on spec.Source.
func Start(eng *sim.Engine, net *simnet.Network, tech Technique, spec Spec) *Migration {
	if spec.VM == nil || spec.Source == nil || spec.Dest == nil {
		panic("core: incomplete migration spec")
	}
	if tech == Agile && spec.Namespace == nil && !spec.Tuning.NoRemoteSwap {
		panic("core: Agile migration requires the VM's namespace")
	}
	if tech == ScatterGather && spec.Namespace == nil {
		panic("core: scatter-gather migration requires the VM's namespace")
	}
	vm := spec.VM
	// A VM has exactly one Migration Manager pair at a time. Starting a
	// second migration while one is live would hand two engines the same
	// page table and adopt a second destination cgroup over the first —
	// silent page-state corruption. Callers that want queueing implement it
	// above this layer (cluster.Testbed rejects, ctlplane queues).
	if vm.Migrating() {
		panic(fmt.Sprintf("core: VM %s is already mid-migration", vm.Name()))
	}
	vm.SetMigrating(true)
	m := &Migration{
		eng:           eng,
		net:           net,
		spec:          spec,
		tun:           spec.Tuning.withDefaults(),
		tech:          tech,
		vm:            vm,
		nPages:        vm.Pages(),
		srcTable:      vm.Table(),
		srcGroup:      vm.Group(),
		pendingDemand: make(map[mem.PageID][]func()),
		downtimeBase:  vm.Downtime(),
	}
	m.em = spec.Trace.Emitter(trace.ScopeVM, vm.Name())
	m.sp = spec.Trace.SpanEmitter(trace.ScopeVM, vm.Name())
	m.demandHist = spec.Metrics.Histogram(vm.Name()+"/demand.latency.seconds", metrics.DefaultLatencyBounds)
	if m.sp.Enabled() || m.demandHist != nil {
		m.demandMeta = make(map[mem.PageID]demandTrack)
	}
	m.result.Technique = tech
	m.result.VMName = vm.Name()
	m.result.Start = eng.Now()
	m.event(trace.MigrationStart, "%s of %s: %d pages, %s -> %s",
		tech, vm.Name(), m.nPages, spec.Source.Name(), spec.Dest.Name())
	if m.sp.Enabled() {
		m.rootSpan = m.sp.Begin(eng.NowSeconds(), "migration", 0,
			trace.Str("technique", tech.String()),
			trace.Num("pages", float64(m.nPages)),
			trace.Str("source", spec.Source.Name()),
			trace.Str("dest", spec.Dest.Name()))
	}

	src, dst := spec.Source.NIC(), spec.Dest.NIC()
	m.pushFlow = net.NewFlow("mig:push:"+vm.Name(), src, dst, spec.Latency)
	m.demandFlow = net.NewFlow("mig:demand:"+vm.Name(), src, dst, spec.Latency)
	m.ctrlFlow = net.NewFlow("mig:ctrl:"+vm.Name(), dst, src, spec.Latency)
	if m.tun.BandwidthCapBytesPerSec > 0 {
		m.pushFlow.SetRateCapBytesPerSecond(m.tun.BandwidthCapBytesPerSec)
		m.demandFlow.SetRateCapBytesPerSecond(m.tun.BandwidthCapBytesPerSec)
	}

	// The destination KVM/QEMU process: a fresh table and cgroup. For
	// Agile the reservation is clamped only at switchover (the per-VM swap
	// device is still attached at the source, so the destination must not
	// evict before then); pre/post-copy destinations evict to their own
	// shared partition from the first received page.
	m.destTable = mem.NewTable(m.nPages)
	resv := spec.DestReservationBytes
	if tech == Agile || tech == ScatterGather {
		resv = vm.MemBytes()
	}
	m.destGroup = cgroup.New(eng, spec.Dest.Name()+"/"+vm.Name(), m.destTable, spec.DestBackend, resv)
	m.destGroup.SetEmitter(spec.Trace.Emitter(trace.ScopeVM, m.destGroup.Name()))
	m.destGroup.RegisterMetrics(spec.Metrics)
	spec.Dest.AdoptGroup(vm, m.destGroup)

	switch tech {
	case PreCopy:
		m.roundBM = mem.NewBitmap(m.nPages)
		m.roundBM.SetAll()
		m.round = 1
		m.result.Rounds = 1
		m.state = phaseLive
		m.beginRoundSpan()
	case PostCopy:
		// Suspend immediately; CPU state leads the stream, pages follow.
		m.event(trace.Suspend, "immediate (post-copy)")
		vm.Suspend()
		m.beginStopSpans()
		m.pushBM = mem.NewBitmap(m.nPages)
		m.pushBM.SetAll()
		m.state = phasePush
		m.pushFlow.SendMessage(m.tun.CPUStateBytes, m.switchover)
	case Agile:
		m.roundBM = mem.NewBitmap(m.nPages)
		m.roundBM.SetAll()
		m.knownUntouched = mem.NewBitmap(m.nPages)
		m.offsetSent = mem.NewBitmap(m.nPages)
		m.round = 1
		m.result.Rounds = 1
		m.state = phaseLive
		m.beginRoundSpan()
	case ScatterGather:
		m.startScatterGather()
	}
	eng.AddTicker(sim.PhaseControl, m)
	return m
}

// Result returns the migration's result so far; meaningful once Done.
func (m *Migration) Result() *Result { return &m.result }

// Done reports whether the source holds no VM state anymore.
func (m *Migration) Done() bool { return m.state == phaseDone }

// Switched reports whether execution has moved to the destination.
func (m *Migration) Switched() bool { return m.switched }

// Aborted reports whether the migration was rolled back to the source.
func (m *Migration) Aborted() bool { return m.aborted }

// Abort rolls a pre-switchover migration back to the source: the
// destination discards everything it received, the VM (resumed if the
// stop-and-copy had suspended it) keeps running where it was, and the
// migration flows close. Returns false once execution has moved to the
// destination (or the migration already finished) — past that point there
// is no source copy to fall back to.
func (m *Migration) Abort() bool {
	if m.switched || m.state == phaseDone || m.aborted {
		return false
	}
	m.aborted = true
	m.state = phaseDone
	m.vm.SetMigrating(false)
	m.result.Aborted = true
	m.event(trace.MigrationAbort, "rolled back to %s after %d pages sent",
		m.spec.Source.Name(), m.result.PagesSent)
	if m.sp.Enabled() {
		now := m.eng.NowSeconds()
		m.sp.End(now, m.phaseSpan)
		m.sp.End(now, m.cpuSpan)
		m.sp.End(now, m.stopSpan)
		m.sp.End(now, m.residSpan)
		m.sp.End(now, m.rootSpan, trace.Str("outcome", "aborted"))
	}
	// The destination side is torn down; its cgroup never ran the VM.
	m.destGroup.Disable()
	m.spec.Dest.RemoveVM(m.vm.Name())
	// Undo anything the live phase did to the guest's execution.
	m.vm.SetCPUQuota(1)
	if !m.vm.Running() {
		m.vm.Resume()
	}
	m.result.End = m.eng.Now()
	m.result.TotalSeconds = sim.Seconds(m.result.End-m.result.Start, m.eng.TickLen())
	m.result.DowntimeSeconds = sim.Seconds(sim.Time(m.vm.Downtime()-m.downtimeBase), m.eng.TickLen())
	m.result.BytesTransferred = m.pushFlow.Offered() + m.demandFlow.Offered() + m.ctrlFlow.Offered()
	m.pushFlow.Close()
	m.demandFlow.Close()
	m.ctrlFlow.Close()
	if m.spec.OnComplete != nil {
		m.spec.OnComplete(&m.result)
	}
	return true
}

// Tick advances the engine's current phase.
func (m *Migration) Tick(_ sim.Time) {
	switch m.state {
	case phaseLive, phaseSuspend:
		if m.roundBM != nil {
			m.pumpRound()
		}
	case phasePush:
		if m.tech == ScatterGather {
			m.pumpScatter()
		} else {
			m.pumpPush()
		}
	}
}

// NextWake reports when the migration pump next has work. While a pump is
// active the manager runs every tick; in the states where Tick is an exact
// no-op — done, waiting for the CPU state to land, demand-only ablation, or
// source drained — progress is driven entirely by flow-delivery and device
// events, so the engine may skip ahead.
func (m *Migration) NextWake(now sim.Time) (sim.Time, bool) {
	switch m.state {
	case phaseDone:
		return sim.Never, true
	case phaseLive, phaseSuspend:
		if m.roundBM == nil {
			// Stop-and-copy finished; the CPU state is on the wire and
			// switchover fires as a message callback.
			return sim.Never, true
		}
		return now + 1, true
	default: // phasePush
		if m.tech == Agile && !m.switched {
			return sim.Never, true
		}
		if m.tun.DisableActivePush && m.tech != ScatterGather {
			return sim.Never, true
		}
		if m.srcDrained {
			return sim.Never, true
		}
		return now + 1, true
	}
}

// pumpRound walks the current round's bitmap, respecting the send window
// and the swap-in concurrency bound.
func (m *Migration) pumpRound() {
	budget := m.tun.PumpPagesPerTick
	for budget > 0 {
		if m.pushFlow.Backlog() >= m.tun.WindowBytes {
			return
		}
		p := m.roundBM.NextSet(m.cursor)
		if p == mem.NoPage {
			if m.faultInFlight > 0 {
				return // stragglers still swapping in
			}
			m.endRound()
			return
		}
		m.cursor = p + 1
		m.roundBM.Clear(p)
		st := m.srcTable.State(p)
		consumed := 1
		switch m.tech {
		case PreCopy:
			if st.OnSwap() {
				// §II: swapped pages must be brought back into memory
				// before they can be transferred.
				if m.faultInFlight >= m.tun.MaxSwapInFlight {
					m.roundBM.Set(p)
					m.cursor = p
					return
				}
				m.swapInAndSend(p, m.roundBM, false)
			} else {
				consumed = m.sendFullRun(p, m.roundBM, budget, false, extendNonSwap)
			}
		case Agile:
			// §IV-E: consult the pagemap; swapped pages travel as offset
			// records, untouched pages as zero records, resident pages in
			// full. Nothing is swapped in — unless the NoRemoteSwap
			// ablation removes the portable swap device, in which case
			// swapped pages take the pre-copy path.
			switch {
			case st.OnSwap() && m.tun.NoRemoteSwap:
				if m.faultInFlight >= m.tun.MaxSwapInFlight {
					m.roundBM.Set(p)
					m.cursor = p
					return
				}
				m.swapInAndSend(p, m.roundBM, false)
			case st.OnSwap():
				m.sendOffsetRecord(p)
			case st == mem.StateUntouched:
				m.sendUntouchedRecord(p)
			default:
				consumed = m.sendFullRun(p, m.roundBM, budget, false, extendAgileFull)
			}
		default:
			panic("core: pumpRound in " + m.tech.String())
		}
		budget -= consumed
	}
}

// extendNonSwap admits any in-memory page into a full-page run (the
// pre-copy and push predicates: everything not on the swap device streams
// in full).
func extendNonSwap(s mem.PageState) bool { return !s.OnSwap() }

// extendAgileFull admits only resident-tier pages: in Agile's live round,
// swapped and untouched pages travel as records, not full pages.
func extendAgileFull(s mem.PageState) bool { return !s.OnSwap() && s != mem.StateUntouched }

// pumpPush streams the post-switchover push set, swapping in at the source
// where needed (post-copy only; Agile's push set was faulted in before
// switchover).
func (m *Migration) pumpPush() {
	if !m.switched && m.tech == Agile {
		return // waiting for the CPU state to arrive
	}
	if m.tun.DisableActivePush {
		return // ablation: demand paging only; transfer time is unbounded
	}
	budget := m.tun.PumpPagesPerTick
	for budget > 0 {
		if m.pushFlow.Backlog() >= m.tun.WindowBytes {
			return
		}
		p := m.pushBM.NextSet(m.cursor)
		if p == mem.NoPage {
			if m.faultInFlight > 0 {
				return
			}
			if !m.srcDrained {
				m.srcDrained = true
				m.event(trace.SourceDrained, "push set empty after %d pages", m.result.PagesSent)
				m.beginResidualSpan()
				// FIFO marker: when this arrives, every pushed page has.
				m.pushFlow.SendMessage(m.tun.RecordBytes, func() {
					m.maybeComplete()
				})
				if m.tun.DemandRetrySeconds > 0 {
					// The marker itself can be lost inside a loss window;
					// poll completion at the retry cadence as a backstop.
					m.armDrainCheck()
				}
			}
			return
		}
		m.cursor = p + 1
		m.pushBM.Clear(p)
		st := m.srcTable.State(p)
		consumed := 1
		if st.OnSwap() {
			if m.faultInFlight >= m.tun.MaxSwapInFlight {
				m.pushBM.Set(p)
				m.cursor = p
				return
			}
			m.swapInAndSend(p, m.pushBM, true)
		} else {
			consumed = m.sendFullRun(p, m.pushBM, budget, true, extendNonSwap)
		}
		budget -= consumed
	}
}

// beginResidualSpan closes the active streaming phase span (push or
// scatter) and opens the residual window: the tail between the source
// draining and the migration completing, spent waiting on in-flight
// deliveries and unanswered demand faults.
func (m *Migration) beginResidualSpan() {
	if !m.sp.Enabled() {
		return
	}
	now := m.eng.NowSeconds()
	m.sp.End(now, m.phaseSpan, trace.Num("pages-sent", float64(m.result.PagesSent)))
	m.phaseSpan = 0
	m.residSpan = m.sp.Begin(now, "residual", m.rootSpan)
}

// armDrainCheck re-evaluates completion periodically once the source has
// drained, so a lost drain marker or demand response cannot wedge an
// otherwise-finished migration.
func (m *Migration) armDrainCheck() {
	m.eng.AfterSeconds(m.tun.DemandRetrySeconds, func() {
		if m.state == phaseDone {
			return
		}
		m.maybeComplete()
		if m.state != phaseDone {
			m.armDrainCheck()
		}
	})
}

// swapInAndSend swaps in page p at the source — together with up to a
// readahead cluster's worth of consecutive swapped pages still pending in
// bm — and streams the batch when it lands. p has already been cleared
// from bm; the cluster members are cleared here. The caller has verified
// the in-flight bound.
func (m *Migration) swapInAndSend(p mem.PageID, bm *mem.Bitmap, freeAfter bool) {
	m.faultInFlight++
	if m.srcTable.State(p) == mem.StateFaulting {
		// A guest fault is already bringing the page in; join it.
		m.srcGroup.FaultIn(p, func() {
			m.faultInFlight--
			m.sendFullPage(p, freeAfter)
		})
		return
	}
	pages := []mem.PageID{p}
	for q := p + 1; int(q) < m.nPages && len(pages) < m.tun.SwapInCluster; q++ {
		if !bm.Test(q) || m.srcTable.State(q) != mem.StateSwapped {
			break
		}
		bm.Clear(q)
		pages = append(pages, q)
	}
	m.srcGroup.FaultInCluster(pages, func() {
		m.faultInFlight--
		step := m.tun.BatchPages
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(pages); i += step {
			j := i + step
			if j > len(pages) {
				j = len(pages)
			}
			m.sendFullPages(pages[i:j], freeAfter)
		}
	})
}

// sendFullRun streams a run of consecutive in-memory pages starting at p as
// one batched message. p is already cleared from bm; the extension — bounded
// by BatchPages, the remaining pump budget, and the extend predicate over
// page states — clears its members and advances the cursor past them.
// Returns the number of pages consumed (1 with batching off, taking exactly
// the unbatched path).
func (m *Migration) sendFullRun(p mem.PageID, bm *mem.Bitmap, budget int, freeAfter bool, extend func(mem.PageState) bool) int {
	maxRun := m.tun.BatchPages
	if maxRun > budget {
		maxRun = budget
	}
	if maxRun <= 1 {
		m.sendFullPage(p, freeAfter)
		return 1
	}
	run := []mem.PageID{p}
	q := p + 1
	for int(q) < m.nPages && len(run) < maxRun && bm.Test(q) && extend(m.srcTable.State(q)) {
		bm.Clear(q)
		run = append(run, q)
		q++
	}
	m.cursor = q
	m.sendFullPages(run, freeAfter)
	return len(run)
}

// sendFullPages streams a run of pages as one message: the page bodies share
// a single header frame, and delivery lands them at the destination in run
// order. A single-page run takes the unbatched path exactly.
func (m *Migration) sendFullPages(run []mem.PageID, freeAfter bool) {
	if len(run) == 1 {
		m.sendFullPage(run[0], freeAfter)
		return
	}
	m.result.PagesSent += int64(len(run))
	batch := append([]mem.PageID(nil), run...)
	for _, q := range batch {
		m.srcTable.ClearDirty(q)
	}
	var bsp trace.SpanID
	if m.sp.Enabled() {
		bsp = m.sp.Begin(m.eng.NowSeconds(), "batch", m.phaseSpan,
			trace.Num("pages", float64(len(batch))))
	}
	m.pushFlow.SendMessage(mem.PagesToBytes(len(batch))+m.tun.PageHeaderBytes, func() {
		for _, q := range batch {
			m.deliverFullPage(q)
		}
		m.sp.End(m.eng.NowSeconds(), bsp)
	})
	if freeAfter {
		for _, q := range batch {
			m.freeSourcePage(q)
		}
	}
}

// sendFullPage streams one page; freeAfter releases the source copy (active
// push and demand service free source memory as they go).
func (m *Migration) sendFullPage(p mem.PageID, freeAfter bool) {
	m.result.PagesSent++
	m.srcTable.ClearDirty(p)
	m.pushFlow.SendMessage(mem.PageSize+m.tun.PageHeaderBytes, func() {
		m.deliverFullPage(p)
	})
	if freeAfter {
		m.freeSourcePage(p)
	}
}

// sendOffsetRecord ships a swapped page by reference (Agile).
func (m *Migration) sendOffsetRecord(p mem.PageID) {
	m.result.OffsetRecords++
	m.offsetSent.Set(p)
	m.srcTable.ClearDirty(p)
	off := m.srcTable.SwapOffset(p)
	m.pushFlow.SendMessage(m.tun.RecordBytes, func() {
		t := m.destTable
		if t.State(p) == mem.StateUntouched {
			// §IV-F: store the offset in the swap offset table and set the
			// page's bit in the swapped bitmap.
			t.SetSwapOffset(p, off)
			t.SetState(p, mem.StateSwapped)
		}
	})
}

// sendUntouchedRecord tells the destination the page reads as zeros.
func (m *Migration) sendUntouchedRecord(p mem.PageID) {
	m.result.UntouchedRecords++
	m.pushFlow.SendMessage(m.tun.RecordBytes, func() {
		m.knownUntouched.Set(p)
	})
}

// freeSourcePage releases the page's source memory once its content is on
// the wire.
func (m *Migration) freeSourcePage(p mem.PageID) {
	switch m.srcTable.State(p) {
	case mem.StateResident, mem.StateEvicting:
		// An in-flight write-back completes against a non-Evicting state
		// and releases its slot.
		m.srcTable.SetState(p, mem.StateUntouched)
	default:
		// Swapped pages stay on the device (Agile cold pages); untouched
		// pages are already free; faulting cannot happen after content was
		// read.
	}
}

// deliverFullPage lands a streamed page in the destination's memory.
func (m *Migration) deliverFullPage(p mem.PageID) {
	t := m.destTable
	switch t.State(p) {
	case mem.StateUntouched:
		t.SetState(p, mem.StateResident)
	case mem.StateSwapped:
		// A newer copy supersedes the one the destination had evicted.
		m.destGroup.Backend().Release(t.SwapOffset(p))
		t.SetState(p, mem.StateResident)
	case mem.StateEvicting:
		m.destGroup.CancelEviction(p)
	case mem.StateResident, mem.StateFaulting:
		// Duplicate (demand/push race) or racing its own fault; no change.
	}
	m.fireDemandWaiters(p)
}

// --- demand paging ------------------------------------------------------

// requestFromSource registers a destination fault and asks the source for
// the page (deduplicating concurrent faults on the same page).
func (m *Migration) requestFromSource(p mem.PageID, done func()) {
	if ws, ok := m.pendingDemand[p]; ok {
		m.pendingDemand[p] = append(ws, done)
		return
	}
	m.pendingDemand[p] = []func(){done}
	m.result.DemandRequests++
	if m.em.Enabled() {
		m.em.Emitf(m.eng.NowSeconds(), trace.DemandFault, "page %d requested from %s", p, m.spec.Source.Name())
	}
	if m.demandMeta != nil {
		dt := demandTrack{start: m.eng.Now()}
		if m.sp.Enabled() {
			dt.span = m.sp.Begin(m.eng.NowSeconds(), "demand-fault", m.rootSpan,
				trace.Num("page", float64(p)))
		}
		m.demandMeta[p] = dt
	}
	m.ctrlFlow.SendMessage(m.tun.DemandRequestBytes, func() {
		m.serveDemand(p, false)
	})
	if m.tun.DemandRetrySeconds > 0 {
		m.armDemandRetry(p, m.tun.DemandRetrySeconds, 1)
	}
}

// armDemandRetry re-sends a demand request that a crash, link outage or
// lost message swallowed: if the page is still unanswered when the timer
// fires, the request goes out again and the timeout doubles (capped at
// 16x the base), up to the retry budget. A retried request may cross a
// late response on the wire; the duplicate delivery is absorbed by
// deliverFullPage.
func (m *Migration) armDemandRetry(p mem.PageID, delay float64, attempt int) {
	m.eng.AfterSeconds(delay, func() {
		if m.state == phaseDone {
			return
		}
		if _, waiting := m.pendingDemand[p]; !waiting {
			return
		}
		if attempt > m.tun.DemandRetryMax {
			return // budget spent; the active push still covers the page
		}
		m.result.DemandRetries++
		m.event(trace.DemandRetry, "page %d unanswered after %.2fs, re-requesting (attempt %d)", p, delay, attempt)
		if dt, ok := m.demandMeta[p]; ok {
			m.sp.SetAttr(dt.span, trace.Num("retries", float64(attempt)))
		}
		m.ctrlFlow.SendMessage(m.tun.DemandRequestBytes, func() {
			m.serveDemand(p, true)
		})
		next := delay * 2
		if max := m.tun.DemandRetrySeconds * 16; next > max {
			next = max
		}
		m.armDemandRetry(p, next, attempt+1)
	})
}

// serveDemand handles a fault request at the source.
func (m *Migration) serveDemand(p mem.PageID, retry bool) {
	if m.pushBM == nil || !m.pushBM.Test(p) {
		// Already pushed (or being pushed): the in-flight copy will fire
		// the waiters on delivery — unless this is a retry, meaning that
		// copy (or the earlier response) was likely lost in transit; send
		// the page again and let duplicate delivery dedup.
		if !retry {
			return
		}
		if _, waiting := m.pendingDemand[p]; !waiting {
			return
		}
		if st := m.srcTable.State(p); st.OnSwap() {
			m.faultInFlight++
			m.srcGroup.FaultIn(p, func() {
				m.faultInFlight--
				m.respondDemand(p)
			})
			return
		}
		m.respondDemand(p)
		return
	}
	m.pushBM.Clear(p)
	st := m.srcTable.State(p)
	if st.OnSwap() {
		if m.tech == ScatterGather && st == mem.StateSwapped {
			// The page is already on the per-VM swap device: answer with a
			// record instead of pulling it through source memory.
			m.sendScatterRecord(p, m.srcTable.SwapOffset(p))
			return
		}
		m.faultInFlight++
		m.srcGroup.FaultIn(p, func() {
			m.faultInFlight--
			m.respondDemand(p)
		})
		return
	}
	m.respondDemand(p)
}

func (m *Migration) respondDemand(p mem.PageID) {
	m.result.PagesSent++
	m.result.PagesDemandServed++
	m.srcTable.ClearDirty(p)
	m.outstandingDemand++
	m.demandFlow.SendMessage(mem.PageSize+m.tun.PageHeaderBytes, func() {
		m.deliverFullPage(p)
		m.outstandingDemand--
		m.maybeComplete()
	})
	m.freeSourcePage(p)
}

func (m *Migration) fireDemandWaiters(p mem.PageID) {
	ws, ok := m.pendingDemand[p]
	if !ok {
		return
	}
	delete(m.pendingDemand, p)
	m.finishDemand(p)
	for _, w := range ws {
		w()
	}
	m.maybeComplete()
}

// maybeComplete finishes the migration once the source is drained and no
// demand traffic is outstanding.
func (m *Migration) maybeComplete() {
	if m.state != phasePush || !m.srcDrained {
		return
	}
	if len(m.pendingDemand) > 0 || m.faultInFlight > 0 {
		return
	}
	// With retries off every response callback fires, so in-flight
	// responses gate completion exactly. With retries armed a lost
	// response leaks this counter; the destination is whole once nothing
	// is pending, so the leak must not wedge completion.
	if m.outstandingDemand > 0 && m.tun.DemandRetrySeconds <= 0 {
		return
	}
	m.complete()
}

// complete tears down the source side.
func (m *Migration) complete() {
	if m.state == phaseDone {
		return
	}
	m.state = phaseDone
	m.vm.SetMigrating(false)
	m.event(trace.Complete, "total %.2fs, %d pages sent, %d demand-served",
		sim.Seconds(m.eng.Now()-m.result.Start, m.eng.TickLen()), m.result.PagesSent, m.result.PagesDemandServed)
	if m.sp.Enabled() {
		now := m.eng.NowSeconds()
		m.sp.End(now, m.residSpan)
		m.sp.End(now, m.phaseSpan)
		m.sp.End(now, m.rootSpan,
			trace.Num("pages-sent", float64(m.result.PagesSent)),
			trace.Num("demand-served", float64(m.result.PagesDemandServed)))
	}
	if m.tech != PreCopy {
		// Runtime faults from here on use the destination cgroup directly.
		m.vm.SetFaultHandler(nil)
	}
	if (m.tech == Agile || m.tech == ScatterGather) && !m.tun.NoRemoteSwap {
		// §IV-B: disconnect the per-VM swap device from the source once
		// the in-memory state has fully migrated.
		m.spec.Namespace.Detach(m.spec.Source.VMDClient())
		m.event(trace.NamespaceDetach, "namespace detached from %s (source drained)", m.spec.Source.Name())
	}
	m.srcGroup.Disable()
	m.spec.Source.RemoveVM(m.vm.Name())
	m.result.End = m.eng.Now()
	m.result.TotalSeconds = sim.Seconds(m.result.End-m.result.Start, m.eng.TickLen())
	m.result.DowntimeSeconds = sim.Seconds(sim.Time(m.vm.Downtime()-m.downtimeBase), m.eng.TickLen())
	m.result.BytesTransferred = m.pushFlow.Offered() + m.demandFlow.Offered() + m.ctrlFlow.Offered()
	m.pushFlow.Close()
	m.demandFlow.Close()
	m.ctrlFlow.Close()
	if m.tech == ScatterGather && m.tun.GatherPrefetch {
		m.startGatherPrefetch()
	}
	if m.spec.OnComplete != nil {
		m.spec.OnComplete(&m.result)
	}
}

// switchover moves execution to the destination (runs when the CPU state
// message is delivered there).
func (m *Migration) switchover() {
	if m.switched {
		return
	}
	m.switched = true
	m.result.Switchover = m.eng.Now()
	m.event(trace.Switchover, "execution resumes at %s", m.spec.Dest.Name())
	if m.sp.Enabled() {
		now := m.eng.NowSeconds()
		m.sp.End(now, m.cpuSpan)
		m.sp.End(now, m.stopSpan)
		m.cpuSpan, m.stopSpan = 0, 0
		if m.tech == PostCopy || m.tech == Agile {
			// Scatter-gather keeps its scatter span; pre-copy completes here.
			m.phaseSpan = m.sp.Begin(now, "push", m.rootSpan)
		}
	}
	if m.tech == ScatterGather {
		// The portable swap device attaches at the destination; scattered
		// pages become reachable there as their records arrive.
		m.spec.Namespace.AttachTo(m.spec.Dest.VMDClient())
		m.event(trace.NamespaceAttach, "namespace attached at %s (switchover)", m.spec.Dest.Name())
		m.destGroup.SetReservationBytes(m.spec.DestReservationBytes)
	}
	if m.tech == Agile {
		// An offset record can go stale without the page ever hitting the
		// dirty log: a clean read at the source faults the page in, which
		// frees the swap slot the record points at. Fold such pages into
		// the push set so the record is discarded below and the resident
		// copy is re-sent like any other live-round casualty.
		m.offsetSent.ForEachSet(func(p mem.PageID) bool {
			if !m.srcTable.State(p).OnSwap() && !m.pushBM.Test(p) {
				m.pushBM.Set(p)
				m.result.StaleOffsetRecords++
			}
			return true
		})
		// Discard destination copies that went stale during the live
		// round: the shipped dirty bitmap tells the destination which
		// pages must come from the source regardless of what it received.
		m.pushBM.ForEachSet(func(p mem.PageID) bool {
			switch m.destTable.State(p) {
			case mem.StateResident:
				m.destTable.SetState(p, mem.StateUntouched)
			case mem.StateSwapped:
				// The offset record is stale; the source faulted the page
				// in (releasing the slot) before switchover.
				m.destTable.SetState(p, mem.StateUntouched)
			}
			m.knownUntouched.Clear(p)
			return true
		})
		// The portable swap device attaches at the destination; the VM's
		// cold pages become reachable there.
		if !m.tun.NoRemoteSwap {
			m.spec.Namespace.AttachTo(m.spec.Dest.VMDClient())
			m.event(trace.NamespaceAttach, "namespace attached at %s (switchover)", m.spec.Dest.Name())
		}
		m.destGroup.SetReservationBytes(m.spec.DestReservationBytes)
	}
	// Any auto-converge throttling ends with the move.
	m.vm.SetCPUQuota(1)
	m.vm.ReplaceTable(m.destTable)
	m.vm.AttachGroup(m.destGroup)
	if m.tech != PreCopy {
		m.vm.SetFaultHandler(&destFaultHandler{m: m})
	}
	if m.spec.OnSwitchover != nil {
		m.spec.OnSwitchover()
	}
	m.vm.Resume()
	if m.tech == PreCopy {
		m.complete()
	}
}

func (m *Migration) String() string {
	return fmt.Sprintf("migration{%s %s, phase %d, round %d}", m.tech, m.vm.Name(), m.state, m.round)
}
