package core

import (
	"agilemig/internal/mem"
	"agilemig/internal/sim"
	"agilemig/internal/trace"
)

// Scatter-gather migration ([22], §VI): optimize the time until the source
// host is free, not the time until the VM's memory has a new home. The VM
// suspends immediately and resumes at the destination (like post-copy),
// but instead of streaming memory to the destination, the source scatters
// every resident page into the VM's VMD namespace — bounded only by the
// source NIC and the intermediaries, not by the destination. As each page
// lands, a 16-byte record tells the destination to mark it in the swapped
// bitmap; from then on the destination gathers it from the per-VM swap
// device like any Agile cold page. Pages the destination faults on before
// their scatter completes are served directly from source memory over the
// demand channel.

// startScatterGather initializes the technique (called from Start).
func (m *Migration) startScatterGather() {
	m.event(trace.ScatterStart, "scattering %d pages into the namespace", m.nPages)
	m.event(trace.Suspend, "immediate (scatter-gather)")
	m.vm.Suspend()
	m.beginStopSpans()
	if m.sp.Enabled() {
		// The scatter stream runs through the stopped window and past
		// switchover until the source drains, so it is the root's child,
		// not the stopped window's.
		m.phaseSpan = m.sp.Begin(m.eng.NowSeconds(), "scatter", m.rootSpan)
	}
	m.pushBM = mem.NewBitmap(m.nPages)
	m.pushBM.SetAll()
	m.knownUntouched = mem.NewBitmap(m.nPages)
	m.state = phasePush
	m.pushFlow.SendMessage(m.tun.CPUStateBytes, m.switchover)
}

// pumpScatter walks the remaining pages, scattering resident ones to the
// VMD and shipping by-reference records for the rest.
func (m *Migration) pumpScatter() {
	// Scattering starts immediately — it needs no destination involvement,
	// and the records queue behind the CPU-state message on the FIFO
	// stream, so they cannot arrive before the namespace attaches.
	budget := m.tun.PumpPagesPerTick
	for budget > 0 {
		if m.scatterInFlight >= m.tun.MaxScatterInFlight {
			return
		}
		if m.pushFlow.Backlog() >= m.tun.WindowBytes {
			return
		}
		p := m.pushBM.NextSet(m.cursor)
		if p == mem.NoPage {
			if m.pushBM.Count() > 0 {
				// Deferred pages (in-flight evictions) remain behind the
				// cursor; wrap and retry.
				m.cursor = 0
				return
			}
			if m.scatterInFlight > 0 || m.faultInFlight > 0 {
				return
			}
			if !m.srcDrained {
				m.srcDrained = true
				m.event(trace.SourceDrained, "scatter complete after %d pages", m.result.PagesScattered)
				m.beginResidualSpan()
				m.pushFlow.SendMessage(m.tun.RecordBytes, func() {
					m.maybeComplete()
				})
			}
			return
		}
		m.cursor = p + 1
		m.pushBM.Clear(p)
		consumed := 1
		switch m.srcTable.State(p) {
		case mem.StateSwapped:
			// Already on the per-VM swap device.
			m.sendScatterRecord(p, m.srcTable.SwapOffset(p))
		case mem.StateFaulting:
			// A guest fault was in flight at suspend time; its slot frees
			// on completion, so scatter the page once it lands.
			m.faultInFlight++
			p := p
			m.srcGroup.FaultIn(p, func() {
				m.faultInFlight--
				m.scatterPage(p)
			})
		case mem.StateEvicting:
			// The page's own eviction is already writing it to the
			// namespace; let it finish and pick the page up as Swapped on
			// the next wrap.
			m.pushBM.Set(p)
		case mem.StateUntouched:
			m.sendUntouchedRecord(p)
		default: // Resident
			consumed = m.scatterRun(p, budget)
		}
		budget -= consumed
	}
}

// scatterRun scatters a run of consecutive resident pages starting at p as
// one batched VMD write (one in-flight unit), bounded by BatchPages and the
// remaining pump budget. Returns the number of pages consumed; with
// batching off it scatters exactly one page the unbatched way.
func (m *Migration) scatterRun(p mem.PageID, budget int) int {
	maxRun := m.tun.BatchPages
	if maxRun > budget {
		maxRun = budget
	}
	if maxRun <= 1 {
		m.scatterPage(p)
		return 1
	}
	run := []mem.PageID{p}
	q := p + 1
	for int(q) < m.nPages && len(run) < maxRun && m.pushBM.Test(q) && m.srcTable.State(q) == mem.StateResident {
		m.pushBM.Clear(q)
		run = append(run, q)
		q++
	}
	m.cursor = q
	if len(run) == 1 {
		m.scatterPage(p)
		return 1
	}
	m.scatterInFlight++
	m.result.PagesScattered += int64(len(run))
	offs := make([]uint32, len(run))
	for i, r := range run {
		offs[i] = uint32(r)
	}
	var bsp trace.SpanID
	if m.sp.Enabled() {
		bsp = m.sp.Begin(m.eng.NowSeconds(), "scatter-batch", m.phaseSpan,
			trace.Num("pages", float64(len(run))))
	}
	ns := m.spec.Namespace
	src := m.spec.Source.VMDClient()
	ns.WriteBatch(src, offs, func() {
		m.scatterInFlight--
		m.sp.End(m.eng.NowSeconds(), bsp)
		for _, r := range run {
			m.freeSourcePage(r)
		}
		m.sendScatterRecords(run)
	})
	return len(run)
}

// scatterPage writes one resident page into the VM's namespace through the
// source's VMD client, then tells the destination where to find it and
// frees the source copy.
func (m *Migration) scatterPage(p mem.PageID) {
	m.scatterInFlight++
	m.result.PagesScattered++
	ns := m.spec.Namespace
	src := m.spec.Source.VMDClient()
	ns.Write(src, uint32(p), func() {
		m.scatterInFlight--
		m.freeSourcePage(p)
		m.sendScatterRecord(p, uint32(p))
	})
}

// sendScatterRecord ships a swapped-bitmap record to the destination after
// the page is durable on the VMD. Unlike Agile's pre-switchover offset
// records, these arrive while the destination VM runs, so a record may
// resolve faults already waiting on the page.
func (m *Migration) sendScatterRecord(p mem.PageID, off uint32) {
	m.result.OffsetRecords++
	m.pushFlow.SendMessage(m.tun.RecordBytes, func() {
		m.deliverScatterRecord(p, off)
	})
}

// sendScatterRecords ships one record per page of a batch-scattered run in
// a single message (the records share the wire like the page bodies did).
func (m *Migration) sendScatterRecords(run []mem.PageID) {
	m.result.OffsetRecords += int64(len(run))
	m.pushFlow.SendMessage(int64(len(run))*m.tun.RecordBytes, func() {
		for _, p := range run {
			m.deliverScatterRecord(p, uint32(p))
		}
	})
}

// deliverScatterRecord lands one swapped-bitmap record at the destination.
func (m *Migration) deliverScatterRecord(p mem.PageID, off uint32) {
	t := m.destTable
	if t.State(p) == mem.StateUntouched {
		t.SetSwapOffset(p, off)
		t.SetState(p, mem.StateSwapped)
	}
	if ws, ok := m.pendingDemand[p]; ok {
		// Faults were waiting for this page; it is now reachable on
		// the swap device.
		delete(m.pendingDemand, p)
		m.destGroup.FaultIn(p, func() {
			m.finishDemand(p)
			for _, w := range ws {
				w()
			}
			m.maybeComplete()
		})
	}
}

// startGatherPrefetch actively pulls scattered pages into the
// destination's reservation after the source is free (the "gather" of the
// original system; without it, pages arrive only as the workload faults).
func (m *Migration) startGatherPrefetch() {
	m.event(trace.GatherStart, "prefetching scattered pages into %s", m.spec.Dest.Name())
	var gsp trace.SpanID
	if m.sp.Enabled() {
		// The root span has just ended (complete runs first), but parent
		// links are structural, not lifetime-nested: the gather tail still
		// belongs to this migration's tree.
		gsp = m.sp.Begin(m.eng.NowSeconds(), "gather", m.rootSpan)
	}
	var cursor mem.PageID
	inFlight := 0
	done := false
	// The hint mirrors the tick body's guards exactly: whenever the body
	// would fall through without touching cursor/inFlight (finished, fetch
	// window full, or no reservation headroom), the tick is a no-op and the
	// engine may skip; fault completions and reclaim run off their own
	// wakes.
	hint := func(now sim.Time) (sim.Time, bool) {
		if done || inFlight >= m.tun.MaxSwapInFlight ||
			mem.BytesToPages(m.destGroup.ReservationBytes()) <= m.destTable.InRAM() {
			return sim.Never, true
		}
		return now + 1, true
	}
	m.eng.AddTickerFuncHinted(sim.PhaseControl, func(sim.Time) {
		if done {
			return
		}
		headroom := mem.BytesToPages(m.destGroup.ReservationBytes()) - m.destTable.InRAM()
		for inFlight < m.tun.MaxSwapInFlight && headroom > 0 {
			// Collect the next cluster of swapped pages.
			var batch []mem.PageID
			for p := cursor; int(p) < m.nPages && len(batch) < m.tun.SwapInCluster; p++ {
				cursor = p + 1
				if m.destTable.State(p) == mem.StateSwapped {
					batch = append(batch, p)
				}
			}
			if len(batch) == 0 {
				if int(cursor) >= m.nPages {
					done = true
					m.sp.End(m.eng.NowSeconds(), gsp)
				}
				return
			}
			inFlight++
			headroom -= len(batch)
			m.destGroup.FaultInCluster(batch, func() { inFlight-- })
		}
	}, hint)
}
