package core

import (
	"agilemig/internal/guest"
	"agilemig/internal/mem"
	"agilemig/internal/trace"
)

// endRound runs when the current round's scan has finished and all
// straggling swap-ins have drained.
func (m *Migration) endRound() {
	switch m.tech {
	case PreCopy:
		m.endPreCopyRound()
	case Agile:
		m.endAgileRound()
	}
}

func (m *Migration) endPreCopyRound() {
	if m.state == phaseSuspend {
		// Stop-and-copy finished: ship CPU state; execution switches when
		// it arrives (FIFO ⇒ after every page of the final round).
		m.roundBM = nil
		m.event(trace.CPUStateSent, "after stop-and-copy round %d", m.round)
		if m.sp.Enabled() {
			now := m.eng.NowSeconds()
			m.sp.End(now, m.phaseSpan)
			m.phaseSpan = 0
			m.cpuSpan = m.sp.Begin(now, "cpu-state", m.stopSpan)
		}
		m.pushFlow.SendMessage(m.tun.CPUStateBytes, m.switchover)
		return
	}
	// §II: iterate until converging on the writable working set.
	remaining := m.srcTable.DirtyCount()
	m.event(trace.RoundEnd, "round %d done; %d pages dirty", m.round, remaining)
	if m.sp.Enabled() {
		m.sp.End(m.eng.NowSeconds(), m.phaseSpan, trace.Num("dirty", float64(remaining)))
		m.phaseSpan = 0
	}
	m.round++
	m.result.Rounds++
	m.srcTable.CollectDirty(m.roundBM)
	m.cursor = 0
	if remaining <= m.tun.PreCopyStopPages || m.round > m.tun.PreCopyMaxRounds {
		// Converged (or gave up): suspend and send the rest. The stopped
		// window opens here; the CPU-state span waits until the final scan
		// finishes, so the stop-and-copy scan is its own child span.
		m.event(trace.Suspend, "stop-and-copy with %d pages", remaining)
		m.vm.Suspend()
		m.state = phaseSuspend
		if m.sp.Enabled() {
			now := m.eng.NowSeconds()
			m.stopSpan = m.sp.Begin(now, "stopped", m.rootSpan)
			m.phaseSpan = m.sp.Begin(now, "stop-and-copy", m.stopSpan,
				trace.Num("pages", float64(remaining)))
		}
		return
	}
	m.event(trace.RoundStart, "round %d over %d pages", m.round, m.roundBM.Count())
	m.beginRoundSpan()
	if m.tun.AutoConverge && remaining >= m.prevRemaining && m.prevRemaining > 0 {
		// The dirty set is not shrinking: throttle the vCPUs so the next
		// round outruns the writes (QEMU auto-converge / SDPS).
		q := m.vm.CPUQuota() * m.tun.AutoConvergeStep
		if q < m.tun.AutoConvergeFloor {
			q = m.tun.AutoConvergeFloor
		}
		m.vm.SetCPUQuota(q)
		m.result.ThrottleEvents++
		m.event(trace.Throttle, "vCPU quota now %.2f", q)
	}
	m.prevRemaining = remaining
}

// endAgileRound finishes Agile's single live round: suspend, build the push
// set, and ship CPU state plus the dirty bitmap.
func (m *Migration) endAgileRound() {
	m.event(trace.Suspend, "after the live round")
	if m.sp.Enabled() {
		m.sp.End(m.eng.NowSeconds(), m.phaseSpan)
		m.phaseSpan = 0
	}
	m.vm.Suspend()
	m.beginStopSpans()
	m.roundBM = nil
	m.pushBM = mem.NewBitmap(m.nPages)
	m.srcTable.CollectDirty(m.pushBM)
	// A page sent as an offset record and then faulted back in at the
	// source no longer has valid contents on the swap device (the slot is
	// freed at swap-in), so the destination's swapped-bitmap entry is
	// stale. Push such pages in full. This includes pages whose fault is
	// still in flight (StateFaulting): their slot will be freed moments
	// from now. Only pages still firmly swapped keep their by-reference
	// record (re-evicted pages are back on the device at the same
	// namespace offset).
	m.offsetSent.ForEachSet(func(p mem.PageID) bool {
		if m.srcTable.State(p) != mem.StateSwapped {
			m.pushBM.Set(p)
		}
		return true
	})
	m.cursor = 0
	m.state = phasePush
	m.event(trace.CPUStateSent, "with dirty bitmap; %d pages to push", m.pushBM.Count())
	cpu := m.tun.CPUStateBytes + int64(m.nPages/8) // dirty bitmap rides along
	m.pushFlow.SendMessage(cpu, m.switchover)
}

// destFaultHandler is the UMEMD equivalent of §IV-F: it owns every
// destination fault while migration is in progress. Faults on pages with a
// swapped-bitmap entry go to the per-VM swap device (or, for post-copy, to
// pages the destination itself evicted); faults on pages that have not
// arrived go to the source; known zero pages resolve locally.
type destFaultHandler struct {
	m *Migration
}

// HandleFault implements guest.FaultHandler.
func (h *destFaultHandler) HandleFault(vm *guest.VM, p mem.PageID, write bool, done func()) bool {
	m := h.m
	switch m.destTable.State(p) {
	case mem.StateResident, mem.StateEvicting:
		// Raced with an arriving copy; usable as-is.
		return true
	case mem.StateSwapped, mem.StateFaulting:
		// The swapped bit is set: read the page from the swap device
		// through the destination's backend.
		m.destGroup.FaultIn(p, done)
		return false
	default: // StateUntouched
		if m.knownUntouched != nil && m.knownUntouched.Test(p) {
			// The source said this page reads as zeros.
			if write {
				m.destTable.SetState(p, mem.StateResident)
			}
			return true
		}
		m.requestFromSource(p, done)
		return false
	}
}
