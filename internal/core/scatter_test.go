package core

import (
	"testing"

	"agilemig/internal/mem"
)

func TestScatterGatherFreesSourceFast(t *testing.T) {
	// Scatter-gather's metric is source-eviction time: with the namespace
	// on a separate intermediate host, the source drains at NIC speed
	// without waiting for the destination.
	r := newRig(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 800 * mib, resBytes: 600 * mib,
		busy: true, opsPerSec: 8000, agileSwap: true})
	res := r.migrate(t, ScatterGather, 600)
	if res.PagesScattered == 0 {
		t.Fatal("nothing scattered")
	}
	// Source residual memory must be fully freed.
	if got := r.mig.srcTable.InRAM(); got != 0 {
		t.Fatalf("source still holds %d pages", got)
	}
	// The wire carried only records and demand responses — far less than
	// the VM's memory (the bulk went to the VMD instead).
	if res.BytesTransferred > r.vm.MemBytes()/2 {
		t.Fatalf("migration flows carried %d bytes; scatter should bypass the dest stream", res.BytesTransferred)
	}
	// The VM must be running at the destination with its pages reachable.
	if !r.vm.Running() {
		t.Fatal("VM not running")
	}
	if r.dst.VM("vm1") == nil || len(r.src.VMs()) != 0 {
		t.Fatal("placement wrong after scatter-gather")
	}
}

func TestScatterGatherDestinationServiceable(t *testing.T) {
	r := newRig(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 700 * mib, resBytes: 500 * mib,
		busy: true, opsPerSec: 5000, agileSwap: true})
	r.migrate(t, ScatterGather, 600)
	// Namespace attached at dest only.
	if r.ns.AttachedTo(r.src.VMDClient()) || !r.ns.AttachedTo(r.dst.VMDClient()) {
		t.Fatal("namespace attachment wrong")
	}
	// Workload keeps completing ops against gathered pages.
	r.eng.RunSeconds(20)
	before := r.client.OpsCompleted()
	r.eng.RunSeconds(10)
	if rate := float64(r.client.OpsCompleted()-before) / 10; rate < 100 {
		t.Fatalf("post-migration throughput %.0f ops/s", rate)
	}
}

func TestScatterGatherPrefetchFillsReservation(t *testing.T) {
	// With GatherPrefetch, the destination pulls scattered pages up to its
	// reservation without waiting for faults.
	r := newRig(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 700 * mib, resBytes: 500 * mib, agileSwap: true})
	spec := Spec{
		VM: r.vm, Source: r.src, Dest: r.dst,
		DestReservationBytes: 500 * mib,
		DestBackend:          r.dstVMDBackend(),
		Namespace:            r.ns,
		Tuning:               Tuning{GatherPrefetch: true},
	}
	mig := Start(r.eng, r.net, ScatterGather, spec)
	for i := 0; i < 4_000_000 && !mig.Done(); i++ {
		r.eng.Step()
	}
	if !mig.Done() {
		t.Fatal("scatter did not complete")
	}
	r.eng.RunSeconds(120)
	inRAM := int64(r.vm.Table().InRAM()) * mem.PageSize
	if inRAM < 400*mib {
		t.Fatalf("prefetch filled only %d MiB of the 500 MiB reservation", inRAM/mib)
	}
}

func TestScatterGatherRequiresNamespace(t *testing.T) {
	r := newRig(t, rigOpt{vmBytes: 512 * mib, datasetBytes: 100 * mib, resBytes: 512 * mib})
	defer func() {
		if recover() == nil {
			t.Fatal("scatter-gather without namespace did not panic")
		}
	}()
	Start(r.eng, r.net, ScatterGather, Spec{VM: r.vm, Source: r.src, Dest: r.dst,
		DestReservationBytes: gib, DestBackend: r.dst.SharedSwapBackend()})
}

func TestScatterGatherEvictionBeatsOthersWithSlowDest(t *testing.T) {
	// The technique's reason to exist: when the destination is constrained
	// (here: a quarter-speed NIC), scatter-gather frees the source several
	// times faster than destination-bound techniques.
	evict := func(tech Technique) float64 {
		r := newRigDestNIC(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 800 * mib, resBytes: 600 * mib,
			agileSwap: true}, gbps/4)
		res := r.migrate(t, tech, 2400)
		return res.TotalSeconds
	}
	sg := evict(ScatterGather)
	agile := evict(Agile)
	post := evict(PostCopy)
	if !(sg < agile && sg < post) {
		t.Fatalf("scatter-gather eviction %.1fs not fastest (agile %.1fs, post %.1fs)", sg, agile, post)
	}
	if sg*2 > agile {
		t.Fatalf("scatter-gather %.1fs should be well under agile %.1fs with a slow destination", sg, agile)
	}
}
