package core

import (
	"strings"
	"testing"

	"agilemig/internal/host"
	"agilemig/internal/trace"
)

func TestTechniqueString(t *testing.T) {
	cases := map[Technique]string{
		PreCopy:       "pre-copy",
		PostCopy:      "post-copy",
		Agile:         "agile",
		Technique(99): "Technique(99)",
	}
	for tech, want := range cases {
		if got := tech.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(tech), got, want)
		}
	}
}

func TestTuningDefaults(t *testing.T) {
	d := Tuning{}.withDefaults()
	if d.WindowBytes != 2<<20 || d.MaxSwapInFlight != 16 || d.PumpPagesPerTick != 4096 {
		t.Fatalf("pump defaults wrong: %+v", d)
	}
	if d.PageHeaderBytes != 16 || d.RecordBytes != 16 || d.CPUStateBytes != 8<<20 {
		t.Fatalf("wire defaults wrong: %+v", d)
	}
	if d.PreCopyMaxRounds != 30 || d.PreCopyStopPages != 7680 || d.DemandRequestBytes != 32 {
		t.Fatalf("round defaults wrong: %+v", d)
	}
	if d.SwapInCluster != 8 {
		t.Fatalf("readahead default wrong: %d", d.SwapInCluster)
	}
	if d.DisableActivePush || d.NoRemoteSwap {
		t.Fatal("ablation flags must default off")
	}
}

func TestTuningOverridesPreserved(t *testing.T) {
	in := Tuning{WindowBytes: 1, MaxSwapInFlight: 2, PumpPagesPerTick: 3,
		PageHeaderBytes: 4, RecordBytes: 5, CPUStateBytes: 6,
		PreCopyMaxRounds: 7, PreCopyStopPages: 8, DemandRequestBytes: 9,
		SwapInCluster: 10, AutoConverge: true, AutoConvergeStep: 0.5,
		AutoConvergeFloor: 0.1, DisableActivePush: true, NoRemoteSwap: true,
		MaxScatterInFlight: 11, GatherPrefetch: true}
	if out := in.withDefaults(); out != in {
		t.Fatalf("withDefaults clobbered overrides: %+v", out)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Technique: Agile, VMName: "vm1", TotalSeconds: 12.5,
		DowntimeSeconds: 0.25, BytesTransferred: 1_000_000, PagesSent: 240,
		OffsetRecords: 10, DemandRequests: 3}
	s := r.String()
	for _, want := range []string{"agile", "vm1", "12.50s", "0.250s", "1.0 MB", "240 pages", "10 offset"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() missing %q: %s", want, s)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	r := newRig(t, rigOpt{vmBytes: 512 * mib, datasetBytes: 100 * mib, resBytes: 512 * mib})
	for name, spec := range map[string]Spec{
		"no vm":     {Source: r.src, Dest: r.dst},
		"no source": {VM: r.vm, Dest: r.dst},
		"no dest":   {VM: r.vm, Source: r.src},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			Start(r.eng, r.net, PreCopy, spec)
		}()
	}
}

func TestDowntimeOrdering(t *testing.T) {
	// Post-copy and Agile suspend only for the CPU-state transfer; their
	// downtime must be sub-second. Pre-copy's stop-and-copy downtime is
	// larger but still bounded by the stop threshold.
	for _, tc := range []struct {
		tech  Technique
		agile bool
		maxS  float64
	}{{PostCopy, false, 0.5}, {Agile, true, 0.6}, {PreCopy, false, 1.5}} {
		r := newRig(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 700 * mib, resBytes: 500 * mib,
			busy: true, opsPerSec: 5000, writeFrac: 0.1, agileSwap: tc.agile})
		res := r.migrate(t, tc.tech, 600)
		if res.DowntimeSeconds <= 0 {
			t.Errorf("%v: zero downtime is implausible", tc.tech)
		}
		if res.DowntimeSeconds > tc.maxS {
			t.Errorf("%v: downtime %.3fs exceeds %.1fs", tc.tech, res.DowntimeSeconds, tc.maxS)
		}
	}
}

func TestAgileNoRemoteSwapTransfersEverything(t *testing.T) {
	// The NoRemoteSwap ablation must behave like a hybrid without the VMD:
	// swapped pages travel in full, no offset records.
	r := newRig(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 800 * mib, resBytes: 400 * mib, agileSwap: true})
	spec := Spec{
		VM: r.vm, Source: r.src, Dest: r.dst,
		DestReservationBytes: r.vm.Group().ReservationBytes(),
		DestBackend:          r.dst.SharedSwapBackend(),
		Tuning:               Tuning{NoRemoteSwap: true},
	}
	mig := Start(r.eng, r.net, Agile, spec)
	for i := 0; i < 4_000_000 && !mig.Done(); i++ {
		r.eng.Step()
	}
	if !mig.Done() {
		t.Fatal("NoRemoteSwap migration did not complete")
	}
	res := mig.Result()
	if res.OffsetRecords != 0 {
		t.Fatalf("%d offset records without a remote swap device", res.OffsetRecords)
	}
	// Every populated page (the dataset) must travel in full — roughly
	// double what Agile-with-VMD would send for the 400 MiB resident set.
	if res.BytesTransferred < 800*mib {
		t.Fatalf("transferred %d < dataset size; cold pages skipped", res.BytesTransferred)
	}
}

func TestDisableActivePushNeverCompletes(t *testing.T) {
	r := newRig(t, rigOpt{vmBytes: 512 * mib, datasetBytes: 300 * mib, resBytes: 512 * mib})
	spec := Spec{
		VM: r.vm, Source: r.src, Dest: r.dst,
		DestReservationBytes: 512 * mib,
		DestBackend:          r.dst.SharedSwapBackend(),
		Namespace:            r.ns,
		Tuning:               Tuning{DisableActivePush: true},
	}
	mig := Start(r.eng, r.net, PostCopy, spec)
	r.eng.RunSeconds(120)
	if mig.Done() {
		t.Fatal("demand-only migration completed; the paper says this is unbounded")
	}
	if !mig.Switched() {
		t.Fatal("execution never switched to the destination")
	}
}

func TestMigrationSwitchedAccessor(t *testing.T) {
	r := newRig(t, rigOpt{vmBytes: 512 * mib, datasetBytes: 100 * mib, resBytes: 512 * mib})
	mig := Start(r.eng, r.net, PreCopy, Spec{
		VM: r.vm, Source: r.src, Dest: r.dst,
		DestReservationBytes: 512 * mib,
		DestBackend:          r.dst.SharedSwapBackend(),
	})
	if mig.Switched() {
		t.Fatal("switched before any transfer")
	}
	for i := 0; i < 2_000_000 && !mig.Done(); i++ {
		r.eng.Step()
	}
	if !mig.Switched() || !mig.Done() {
		t.Fatal("migration did not finish")
	}
}

func TestMigrationTraceRecordsLifecycle(t *testing.T) {
	r := newRig(t, rigOpt{vmBytes: 1 * gib, datasetBytes: 700 * mib, resBytes: 400 * mib,
		busy: true, opsPerSec: 8000, writeFrac: 0.3, agileSwap: true})
	tr := trace.New(0)
	spec := Spec{
		VM: r.vm, Source: r.src, Dest: r.dst,
		DestReservationBytes: r.vm.Group().ReservationBytes(),
		DestBackend:          host.VMDSwapBackend(r.ns, r.dst.VMDClient()),
		Namespace:            r.ns,
		Trace:                tr,
	}
	mig := Start(r.eng, r.net, Agile, spec)
	for i := 0; i < 4_000_000 && !mig.Done(); i++ {
		r.eng.Step()
	}
	if !mig.Done() {
		t.Fatal("migration incomplete")
	}
	for _, k := range []trace.Kind{trace.MigrationStart, trace.Suspend,
		trace.CPUStateSent, trace.Switchover, trace.SourceDrained, trace.Complete} {
		if tr.Find(k) == nil {
			t.Errorf("trace missing %v event:\n%s", k, tr.String())
		}
	}
	// Events must be in lifecycle order.
	order := []trace.Kind{trace.MigrationStart, trace.Suspend, trace.Switchover, trace.Complete}
	last := -1.0
	for _, k := range order {
		e := tr.Find(k)
		if e.T < last {
			t.Errorf("%v at %.3fs out of order", k, e.T)
		}
		last = e.T
	}
}
