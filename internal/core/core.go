// Package core implements the paper's contribution: live VM migration
// engines on the simulated KVM/QEMU-like substrate. Three techniques are
// provided:
//
//   - PreCopy — classic iterative pre-copy (§II): rounds over the dirty
//     bitmap while the VM runs at the source, swapping in any swapped-out
//     page before sending it, then a stop-and-copy round.
//   - PostCopy — immediate switchover (§II): CPU state moves first, the VM
//     resumes at the destination, and memory follows by active push plus
//     demand paging from the source (which must swap pages in to serve
//     them).
//   - Agile — the paper's hybrid (§III): one live round that streams only
//     resident pages and sends 16-byte offset records for swapped ones,
//     switchover, then active push of the pages dirtied during the round,
//     with destination faults routed either to the source (dirty pages) or
//     directly to the per-VM VMD swap device (cold pages).
//
// The Migration Manager on each side is modelled by a single Migration
// object driving both ends over three flows: the migration TCP stream
// (push), a demand-page response stream, and a control/request channel —
// all sharing NIC bandwidth with application traffic.
package core

import (
	"fmt"

	"agilemig/internal/cgroup"
	"agilemig/internal/guest"
	"agilemig/internal/host"
	"agilemig/internal/metrics"
	"agilemig/internal/sim"
	"agilemig/internal/trace"
	"agilemig/internal/vmd"
)

// Technique selects the migration algorithm.
type Technique int

// PreCopy, PostCopy and Agile are the three techniques compared throughout
// the paper's evaluation. ScatterGather additionally implements the fast
// server-deprovisioning technique of the authors' prior work the paper
// cites ([22], discussed in §VI): the suspended VM's resident pages are
// scattered to the VMD intermediaries at full source-NIC speed (no
// destination involvement), the destination resumes immediately and
// gathers pages from the per-VM swap device on demand — freeing the source
// as fast as the network allows even when the destination is constrained.
const (
	PreCopy Technique = iota
	PostCopy
	Agile
	ScatterGather
)

// String returns the technique name as used in the paper's tables.
func (t Technique) String() string {
	switch t {
	case PreCopy:
		return "pre-copy"
	case PostCopy:
		return "post-copy"
	case Agile:
		return "agile"
	case ScatterGather:
		return "scatter-gather"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Tuning holds the migration engine's knobs. Zero values select defaults.
type Tuning struct {
	// WindowBytes bounds the unsent backlog queued on the migration stream
	// (socket-buffer depth); it keeps the scan synchronized with what the
	// network actually drains.
	WindowBytes int64
	// MaxSwapInFlight bounds concurrent migration-driven swap-ins at the
	// source (QEMU's sequential page reads fault a handful at a time).
	MaxSwapInFlight int
	// PumpPagesPerTick bounds how many pages the scan visits per tick
	// (memory-scan speed).
	PumpPagesPerTick int
	// PageHeaderBytes is the per-page framing on the wire.
	PageHeaderBytes int64
	// RecordBytes is the size of a swapped-offset or untouched record.
	RecordBytes int64
	// CPUStateBytes is the device+vCPU state shipped at switchover.
	CPUStateBytes int64
	// PreCopyMaxRounds caps the iterative phase.
	PreCopyMaxRounds int
	// PreCopyStopPages: suspend when the dirty set falls to this size.
	PreCopyStopPages int
	// DemandRequestBytes is the size of a destination fault request.
	DemandRequestBytes int64
	// SwapInCluster is how many consecutive swapped pages one
	// migration-driven swap-in brings back in a single device request
	// (Linux swap readahead; the kernel default cluster is 8 pages).
	SwapInCluster int
	// BatchPages coalesces runs of consecutive same-kind pages into one
	// wire message on the bulk paths (pre-copy rounds, active push, the
	// scatter phase): up to this many page bodies share a single
	// PageHeaderBytes frame (or, for scatter, a single VMD batch write).
	// Zero or one sends page-at-a-time, byte-identical to the unbatched
	// engine.
	BatchPages int

	// AutoConverge enables SDPS-style vCPU throttling for pre-copy (§VI:
	// "SDPS slows down vCPUs to speed up migration of write-intensive
	// VMs [but] degrades the application performance further"): whenever a
	// round fails to shrink the dirty set, the guest's CPU quota is cut by
	// AutoConvergeStep, down to AutoConvergeFloor; full speed returns at
	// switchover.
	AutoConverge      bool
	AutoConvergeStep  float64 // multiplicative cut per non-converging round (default 0.7)
	AutoConvergeFloor float64 // lowest quota (default 0.2)

	// DisableActivePush is an ablation switch: post-switchover pages move
	// only by demand paging. The paper argues this makes the transfer take
	// "an unbounded amount of time" — with the flag set the migration
	// never reaches completion on its own; measure a window instead.
	DisableActivePush bool
	// NoRemoteSwap is an ablation switch for Agile: the per-VM swap device
	// is not reachable from the destination, so swapped pages must be
	// swapped in at the source and transferred like pre-copy does — the
	// VMware-style configuration §VI contrasts against.
	NoRemoteSwap bool

	// MaxScatterInFlight bounds concurrent VMD writes during a
	// scatter-gather migration's scatter phase.
	MaxScatterInFlight int
	// GatherPrefetch makes the scatter-gather destination actively pull
	// pages from the VMD (up to its reservation) after the source is
	// freed, instead of waiting for faults.
	GatherPrefetch bool

	// DemandRetrySeconds arms demand-paging timeouts: a destination fault
	// request unanswered after this long is re-sent with exponential
	// backoff (doubling per attempt, capped at 16x), up to DemandRetryMax
	// re-sends. Zero (the default) disables retries — on a fault-free
	// cluster every request is answered, and the timers are pure overhead.
	DemandRetrySeconds float64
	// DemandRetryMax bounds re-sends per page (default 8 when retries are
	// armed). After the budget the page is left to the active push.
	DemandRetryMax int

	// BandwidthCapBytesPerSec, when positive, shapes the migration's data
	// flows (the push stream and the demand-response stream, each) to at
	// most this rate, regardless of the fair share NIC arbitration would
	// grant — the per-migration bandwidth cap a control plane sets so one
	// drain cannot starve application traffic. Zero leaves the flows
	// uncapped and the simulation byte-identical to builds without the
	// knob.
	BandwidthCapBytesPerSec int64
}

func (t Tuning) withDefaults() Tuning {
	if t.WindowBytes == 0 {
		t.WindowBytes = 2 << 20
	}
	if t.MaxSwapInFlight == 0 {
		t.MaxSwapInFlight = 16
	}
	if t.PumpPagesPerTick == 0 {
		t.PumpPagesPerTick = 4096
	}
	if t.PageHeaderBytes == 0 {
		t.PageHeaderBytes = 16
	}
	if t.RecordBytes == 0 {
		t.RecordBytes = 16
	}
	if t.CPUStateBytes == 0 {
		t.CPUStateBytes = 8 << 20
	}
	if t.PreCopyMaxRounds == 0 {
		t.PreCopyMaxRounds = 30
	}
	if t.PreCopyStopPages == 0 {
		// ~250 ms of line rate at 1 Gbps.
		t.PreCopyStopPages = 7680
	}
	if t.DemandRequestBytes == 0 {
		t.DemandRequestBytes = 32
	}
	if t.SwapInCluster == 0 {
		t.SwapInCluster = 8
	}
	if t.AutoConvergeStep == 0 {
		t.AutoConvergeStep = 0.7
	}
	if t.MaxScatterInFlight == 0 {
		t.MaxScatterInFlight = 128
	}
	if t.AutoConvergeFloor == 0 {
		t.AutoConvergeFloor = 0.2
	}
	if t.DemandRetrySeconds > 0 && t.DemandRetryMax == 0 {
		t.DemandRetryMax = 8
	}
	return t
}

// Spec describes one migration.
type Spec struct {
	VM     *guest.VM
	Source *host.Host
	Dest   *host.Host

	// DestReservationBytes is the VM's cgroup reservation at the
	// destination.
	DestReservationBytes int64
	// DestBackend is the VM's swap backend at the destination: the
	// destination's shared partition for pre-/post-copy, or the VM's own
	// VMD namespace (via the destination's client) for Agile.
	DestBackend cgroup.SwapBackend
	// Namespace is the VM's per-VM swap device; required for Agile (it is
	// re-attached at the destination at switchover and detached from the
	// source when the in-memory state has fully migrated).
	Namespace *vmd.Namespace
	// Latency is the one-way network latency between the hosts, in ticks.
	Latency sim.Duration
	// Tuning overrides engine defaults where non-zero.
	Tuning Tuning

	// Trace, when non-nil, records phase-level events (round boundaries,
	// suspension, switchover, drain) for inspection.
	Trace *trace.Trace

	// Metrics, when non-nil, receives the destination cgroup's gauges so a
	// sampled registry covers both ends of the migration.
	Metrics *metrics.Registry
	// OnSwitchover runs the instant execution moves to the destination
	// (clients retarget their flows here).
	OnSwitchover func()
	// OnComplete runs when the source holds no VM state anymore.
	OnComplete func(*Result)
}

// Result reports what the migration did, in the units the paper's tables
// use.
type Result struct {
	Technique Technique
	VMName    string

	Start      sim.Time
	Switchover sim.Time
	End        sim.Time

	TotalSeconds      float64
	DowntimeSeconds   float64
	BytesTransferred  int64 // bytes on the migration flows (Table III)
	PagesSent         int64 // full pages streamed (all phases)
	PagesDemandServed int64 // subset of PagesSent sent as demand responses
	OffsetRecords     int64 // Agile: swapped pages sent by reference
	UntouchedRecords  int64 // Agile: never-touched pages sent by reference
	DemandRequests    int64 // destination faults that went to the source
	Rounds            int   // pre-copy iterations (including stop-and-copy)
	ThrottleEvents    int   // auto-converge vCPU throttles applied
	PagesScattered    int64 // scatter-gather: pages written to the VMD
	DemandRetries     int64 // demand requests re-sent after a timeout
	// StaleOffsetRecords counts Agile offset records invalidated before
	// switchover by a clean source fault-in freeing the referenced slot;
	// those pages are re-pushed in full.
	StaleOffsetRecords int64
	Aborted            bool // rolled back to the source before switchover
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s of %s: total %.2fs, downtime %.3fs, %.1f MB transferred (%d pages, %d offset records, %d demand)",
		r.Technique, r.VMName, r.TotalSeconds, r.DowntimeSeconds,
		float64(r.BytesTransferred)/1e6, r.PagesSent, r.OffsetRecords, r.DemandRequests)
}
