GO ?= go

.PHONY: build test bench lint vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Re-run the BENCH_kernel.json benchmarks: the raw single-engine tick
# rate, the 64-host sharded-cluster scaling run (1/2/4/8 shards) and the
# VMD demand-read path (flat vs batched+readahead store).
# Compare the printed numbers against the history in BENCH_kernel.json.
bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineTicksPerSecond -benchtime 3s -count 3 ./internal/sim/
	$(GO) test -run '^$$' -bench BenchmarkShardedClusterTicksPerSecond -count 3 ./internal/cluster/
	$(GO) test -run '^$$' -bench BenchmarkVMDDemandRead -count 3 ./internal/vmd/

# Run the agilelint suite (detrand, maporder, emitnil, unitcheck,
# tickdrift, shardsafe, plus the flow-sensitive dettaint, phasecheck and
# outcomecheck) over the whole repository through the vet driver — the
# same invocation CI's lint job uses. See DESIGN.md §"Statically
# enforced invariants" for what each analyzer proves.
lint:
	$(GO) build -o agilelint ./cmd/agilelint && $(GO) vet -vettool=./agilelint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w cmd internal examples
