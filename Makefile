GO ?= go

.PHONY: build test lint vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Run the agilelint suite (detrand, maporder, emitnil, unitcheck,
# tickdrift) over the whole repository through the vet driver — the same
# invocation CI's lint job uses. See DESIGN.md §"Statically enforced
# invariants" for what each analyzer proves.
lint:
	$(GO) build -o agilelint ./cmd/agilelint && $(GO) vet -vettool=./agilelint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w cmd internal examples
