package agilemig

import (
	"testing"
)

// TestQuickstartPath exercises the README's quick-start sequence through
// the public facade at a small scale.
func TestQuickstartPath(t *testing.T) {
	cfg := DefaultTestbedConfig()
	cfg.HostRAMBytes = 3 * GiB
	cfg.IntermediateRAMBytes = 8 * GiB
	tb := NewTestbed(cfg)

	vm := tb.DeployVM("demo", 1*GiB, 384*MiB, true)
	vm.LoadDataset(768 * MiB)
	tb.RunSeconds(60)

	if _, err := tb.Migrate(vm, Agile, 384*MiB); err != nil {
		t.Fatal(err)
	}
	if tb.RunUntilMigrated(vm, 1200) != OutcomeCompleted {
		t.Fatal("quickstart migration did not complete")
	}
	r := vm.Result
	if r.Technique != Agile {
		t.Fatalf("result technique %v", r.Technique)
	}
	if r.TotalSeconds <= 0 || r.BytesTransferred <= 0 {
		t.Fatalf("implausible result: %+v", r)
	}
	if r.OffsetRecords == 0 {
		t.Fatal("no cold pages travelled by reference despite overcommit")
	}
}

// TestFacadeHelpers checks the re-exported configuration helpers.
func TestFacadeHelpers(t *testing.T) {
	if YCSBClient().Name != "ycsb" || SysbenchClient().Name != "sysbench" {
		t.Fatal("client presets broken")
	}
	tc := DefaultTrackerConfig()
	if tc.Alpha != 0.95 || tc.Beta != 1.03 || tc.TauBytesPerSec != 4096 {
		t.Fatalf("paper tracker parameters wrong: %+v", tc)
	}
	picked := SelectVMsToMigrate(map[string]int64{"a": 4 * GiB, "b": 1 * GiB}, 2*GiB)
	if len(picked) != 1 || picked[0] != "a" {
		t.Fatalf("selection helper wrong: %v", picked)
	}
	for i, tech := range []Technique{PreCopy, PostCopy, Agile} {
		if int(tech) != i {
			t.Fatal("technique constants shifted")
		}
	}
}

// TestTechniqueComparison runs all three techniques through the facade on
// the same scenario and checks the paper's headline orderings end to end.
func TestTechniqueComparison(t *testing.T) {
	results := map[Technique]*MigrationResult{}
	for _, tech := range []Technique{PreCopy, PostCopy, Agile} {
		cfg := DefaultTestbedConfig()
		cfg.HostRAMBytes = 3 * GiB
		cfg.IntermediateRAMBytes = 8 * GiB
		tb := NewTestbed(cfg)
		vm := tb.DeployVM("demo", 2*GiB, 768*MiB, tech == Agile)
		vm.LoadDataset(1536 * MiB)
		tb.RunSeconds(120)
		if _, err := tb.Migrate(vm, tech, 768*MiB); err != nil {
			t.Fatal(err)
		}
		if tb.RunUntilMigrated(vm, 4000) != OutcomeCompleted {
			t.Fatalf("%v did not complete", tech)
		}
		results[tech] = vm.Result
	}
	if !(results[Agile].TotalSeconds < results[PostCopy].TotalSeconds &&
		results[PostCopy].TotalSeconds < results[PreCopy].TotalSeconds) {
		t.Errorf("time ordering: pre %.1f post %.1f agile %.1f",
			results[PreCopy].TotalSeconds, results[PostCopy].TotalSeconds, results[Agile].TotalSeconds)
	}
	if results[Agile].BytesTransferred >= results[PostCopy].BytesTransferred {
		t.Errorf("agile bytes %d >= post %d",
			results[Agile].BytesTransferred, results[PostCopy].BytesTransferred)
	}
}

// TestDeterminism runs the same scenario twice and demands bit-identical
// results — the property the whole simulator is built around.
func TestDeterminism(t *testing.T) {
	run := func() *MigrationResult {
		cfg := DefaultTestbedConfig()
		cfg.HostRAMBytes = 3 * GiB
		cfg.IntermediateRAMBytes = 8 * GiB
		cfg.Seed = 12345
		tb := NewTestbed(cfg)
		vm := tb.DeployVM("demo", 1*GiB, 384*MiB, true)
		vm.LoadDataset(768 * MiB)
		c := YCSBClient()
		c.MaxOpsPerSecond = 5000
		// Clients draw from the engine's seeded RNG, so the whole run is
		// reproducible.
		tb.RunSeconds(60)
		if _, err := tb.Migrate(vm, Agile, 384*MiB); err != nil {
			t.Fatal(err)
		}
		tb.RunUntilMigrated(vm, 1200)
		return vm.Result
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("migration incomplete")
	}
	if a.TotalSeconds != b.TotalSeconds ||
		a.BytesTransferred != b.BytesTransferred ||
		a.PagesSent != b.PagesSent ||
		a.OffsetRecords != b.OffsetRecords ||
		a.DowntimeSeconds != b.DowntimeSeconds {
		t.Fatalf("non-deterministic results:\n%v\n%v", a, b)
	}
}
