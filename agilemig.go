// Package agilemig is a reproduction of "Agile Live Migration of Virtual
// Machines" (Deshpande, Chan, Guh, Edouard, Gopalan, Bila — IPPS 2016) as
// a deterministic cluster simulation written in pure Go.
//
// The paper's contribution — a hybrid pre/post-copy live migration that
// transfers only a VM's working set while cold pages stay on a portable,
// per-VM remote swap device (the VMD) — is implemented in internal/core on
// top of a full substrate: a discrete-time simulation kernel, a fair-share
// network, block devices, cgroup-style memory control, guest VMs,
// benchmark workloads, the VMD distributed page store, and the
// transparent working-set tracker. This package re-exports the surface a
// downstream user needs: building testbeds, deploying VMs, migrating them
// with any of the three techniques, and tracking working sets.
//
// Quick start:
//
//	tb := agilemig.NewTestbed(agilemig.DefaultTestbedConfig())
//	vm := tb.DeployVM("demo", 2<<30, 768<<20, true)
//	vm.LoadDataset(1536 << 20)
//	tb.RunSeconds(120)
//	if _, err := tb.Migrate(vm, agilemig.Agile, 768<<20); err != nil {
//		log.Fatal(err)
//	}
//	if tb.RunUntilMigrated(vm, 2000) == agilemig.OutcomeCompleted {
//		fmt.Println(vm.Result)
//	}
//
// The experiments reproducing every table and figure of the paper live in
// internal/experiments and are runnable through cmd/agilesim; the
// examples/ directory holds self-contained scenarios.
package agilemig

import (
	"agilemig/internal/cluster"
	"agilemig/internal/core"
	"agilemig/internal/workload"
	"agilemig/internal/wss"
)

// Technique selects a live-migration algorithm.
type Technique = core.Technique

// The three techniques the paper evaluates.
const (
	// PreCopy is classic iterative pre-copy migration.
	PreCopy = core.PreCopy
	// PostCopy is immediate-switchover post-copy migration with active
	// push and demand paging.
	PostCopy = core.PostCopy
	// Agile is the paper's hybrid: one live round of resident pages,
	// switchover, push of the round's dirtied pages, and cold pages served
	// directly from the per-VM VMD swap device.
	Agile = core.Agile
	// ScatterGather is the fast-eviction technique of the authors' prior
	// work ([22], §VI): resident pages scatter to the VMD intermediaries at
	// source-NIC speed and the destination gathers them on demand.
	ScatterGather = core.ScatterGather
)

// MigrationResult reports a completed migration in the paper's units.
type MigrationResult = core.Result

// MigrationTuning exposes the engine knobs (window, swap-in clustering,
// pre-copy round limits) and the ablation switches.
type MigrationTuning = core.Tuning

// Testbed is an assembled cluster: source and destination hosts, VMD
// intermediates, and an external client machine.
type Testbed = cluster.Testbed

// TestbedConfig shapes a testbed.
type TestbedConfig = cluster.Config

// VM bundles a deployed VM with its swap namespace, dataset, benchmark
// client and migration state.
type VM = cluster.VMHandle

// Outcome is the typed result of Testbed.RunUntilMigrated: completed,
// aborted (rolled back to the source), or timed out still in flight.
type Outcome = cluster.Outcome

// The three wait outcomes.
const (
	OutcomeCompleted = cluster.OutcomeCompleted
	OutcomeAborted   = cluster.OutcomeAborted
	OutcomeTimeout   = cluster.OutcomeTimeout
)

// ClientConfig shapes a benchmark client.
type ClientConfig = workload.ClientConfig

// TrackerConfig shapes the transparent working-set tracker.
type TrackerConfig = wss.TrackerConfig

// Byte-size helpers.
const (
	KiB = cluster.KiB
	MiB = cluster.MiB
	GiB = cluster.GiB
)

// NewTestbed builds a cluster.
func NewTestbed(cfg TestbedConfig) *Testbed { return cluster.New(cfg) }

// DefaultTestbedConfig returns the paper's §V testbed: 23 GB hosts, 1 Gbps
// Ethernet, a 30 GB SSD swap partition, one VMD intermediate.
func DefaultTestbedConfig() TestbedConfig { return cluster.DefaultConfig() }

// YCSBClient returns the YCSB/Redis client shape of §V-A.
func YCSBClient() ClientConfig { return workload.YCSB() }

// SysbenchClient returns the Sysbench-OLTP client shape of §V-C.
func SysbenchClient() ClientConfig { return workload.Sysbench() }

// DefaultTrackerConfig returns the §V-D tracker parameters (α=0.95,
// β=1.03, τ=4 KB/s, 2 s→30 s adjustment intervals).
func DefaultTrackerConfig() TrackerConfig { return wss.DefaultTrackerConfig() }

// SelectVMsToMigrate picks the fewest VMs whose departure brings the
// aggregate working-set size below the low watermark (§III-B).
func SelectVMsToMigrate(wssBytes map[string]int64, lowWatermark int64) []string {
	return wss.SelectVMsToMigrate(wssBytes, lowWatermark)
}
