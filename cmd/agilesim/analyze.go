// The `agilesim analyze` subcommand: offline analysis of a span JSONL log
// (written by `quickstart -trace-jsonl` or `fleet -trace-jsonl`), plus a
// strict validator for Prometheus text-format expositions (used by CI to
// check the /metrics endpoint).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"agilemig/internal/metrics"
	"agilemig/internal/report"
	"agilemig/internal/trace"
)

// runAnalyze handles `agilesim analyze [flags]`; args excludes the
// subcommand word itself.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("agilesim analyze", flag.ExitOnError)
	spansPath := fs.String("spans", "", "span JSONL file (from -trace-jsonl); \"-\" reads stdin")
	csvPath := fs.String("csv", "", "also write the full analysis (critical-path segments, downtime overlaps) as CSV to this file")
	promPath := fs.String("prom", "", "instead: validate a Prometheus text-format exposition file and exit; \"-\" reads stdin")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: agilesim analyze -spans file.jsonl [-csv out.csv]\n")
		fmt.Fprintf(os.Stderr, "       agilesim analyze -prom metrics.txt\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 || (*spansPath == "") == (*promPath == "") {
		fs.Usage()
		os.Exit(2)
	}

	open := func(path string) io.ReadCloser {
		if path == "-" {
			return io.NopCloser(os.Stdin)
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agilesim: analyze:", err)
			os.Exit(1)
		}
		return f
	}

	if *promPath != "" {
		r := open(*promPath)
		defer r.Close()
		families, samples, err := metrics.ValidateExposition(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agilesim: analyze: invalid exposition:", err)
			os.Exit(1)
		}
		fmt.Printf("ok: %d metric families, %d samples\n", families, samples)
		return
	}

	r := open(*spansPath)
	defer r.Close()
	spans, summary, err := trace.ReadSpansJSONL(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agilesim: analyze:", err)
		os.Exit(1)
	}
	a := report.AnalyzeSpans(spans)
	report.RenderSpanAnalysis(os.Stdout, a)
	if summary.SpanDrops > 0 {
		fmt.Fprintf(os.Stderr, "agilesim: analyze: the log reports %d dropped spans; the analysis is partial\n", summary.SpanDrops)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agilesim: analyze:", err)
			os.Exit(1)
		}
		defer f.Close()
		report.WriteSpanAnalysisCSV(f, a)
	}
}
