// The -metrics-addr endpoint: a localhost HTTP server exposing the
// quickstart's metrics.Registry in Prometheus text format 0.0.4 at
// /metrics. The simulation goroutine renders a snapshot at every sampler
// tick (via Registry.SetSampleHook) and publishes it through an
// atomic.Value; the HTTP handlers only ever read the latest snapshot, so
// scrapes never touch live simulator state and determinism is untouched.
package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"agilemig/internal/metrics"
	"sync/atomic"
)

// metricsEndpoint is the published-snapshot server.
type metricsEndpoint struct {
	snap atomic.Value // []byte: the last rendered exposition
	srv  *http.Server
	addr string
}

// startMetricsEndpoint listens on addr (use 127.0.0.1:port; the server has
// no auth) and serves /metrics until closed.
func startMetricsEndpoint(addr string) (*metricsEndpoint, error) {
	ep := &metricsEndpoint{addr: addr}
	ep.snap.Store([]byte("# agilesim metrics endpoint up; no snapshot rendered yet\n"))
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(ep.snap.Load().([]byte))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep.addr = ln.Addr().String()
	ep.srv = &http.Server{Handler: mux}
	go ep.srv.Serve(ln)
	return ep, nil
}

// publish renders the registry and swaps it in as the served snapshot.
// Call only from the goroutine that owns the registry (the sample hook
// runs on the simulation goroutine; the final render after the run).
func (ep *metricsEndpoint) publish(reg *metrics.Registry) {
	var b bytes.Buffer
	if err := metrics.WritePrometheus(&b, reg); err != nil {
		return
	}
	ep.snap.Store(b.Bytes())
}

// holdAndClose publishes a final snapshot, keeps serving for holdSeconds
// (so a scraper — CI, a browser — can read the end-of-run state), then
// shuts the listener down.
func (ep *metricsEndpoint) holdAndClose(reg *metrics.Registry, holdSeconds float64) {
	ep.publish(reg)
	if holdSeconds > 0 {
		fmt.Fprintf(os.Stderr, "agilesim: serving final metrics at http://%s/metrics for %.0fs\n", ep.addr, holdSeconds)
		//lint:tickdrift wall-clock serving window for external scrapers, not simulated time
		time.Sleep(time.Duration(holdSeconds * float64(time.Second)))
	}
	ep.srv.Close()
}
