// Command agilesim reproduces the paper's evaluation. Each experiment id
// corresponds to one table or figure of "Agile Live Migration of Virtual
// Machines" (IPPS 2016); the output prints the same rows or series the
// paper reports.
//
// Usage:
//
//	agilesim [-scale f] [-seed n] [-csv file] [-parallel n]
//	         [-trace-out file] [-trace-jsonl file] [-metrics-out file]
//	         [-metrics-addr host:port] [-metrics-hold s]
//	         [-cpuprofile file] [-memprofile file] <experiment>
//	agilesim analyze -spans file.jsonl [-csv out.csv]
//	agilesim analyze -prom metrics.txt
//
// Experiments:
//
//	fig4       YCSB throughput timeline during pre-copy migration
//	fig5       YCSB throughput timeline during post-copy migration
//	fig6       YCSB throughput timeline during Agile migration
//	fig7       total migration time vs VM size (idle & busy, all techniques)
//	fig8       data transferred vs VM size (same sweep)
//	tables     Tables I-III (app performance, migration time, data volume)
//	fig9       transparent WSS tracking (reservation over time)
//	fig10      YCSB throughput while the reservation adapts
//	ablation   design-choice ablations (push, remote swap, placement, watermarks)
//	quickstart one loaded VM migrated with each technique (the observability demo)
//	recovery   Agile migration surviving a VMD server crash (K=1 vs K=2)
//	vmdsweep   VMD store-variant ladder (v1 flat / +batch / +prefetch / +ctier / +hash)
//	fleet      staggered 64-host evacuation on the sharded parallel kernel
//	all        everything above
//
// The -shards flag selects the parallel kernel width (cluster.Config.Shards
// / cluster.Fleet): every experiment produces byte-identical output at any
// -shards value and GOMAXPROCS — CI diffs exactly that matrix. The paper
// testbed is one network-arbitration domain, so its experiments keep all
// hosts on shard 0; the fleet experiment genuinely spreads its cells (set
// -cells to resize it) across the shards.
//
// The -faults flag injects a deterministic fault schedule into the
// quickstart runs (e.g. -faults crash:inter1@130+10,loss:source@125+5=0.2)
// and -replicas sets the VMD replication factor (for recovery it instead
// narrows the K=1-vs-K=2 comparison to the given K); both default to off,
// in which case the output is byte-identical to a build without fault
// support.
//
// The -trace-out flag writes a Chrome trace-event JSON file (open it in
// Perfetto or chrome://tracing) of the quickstart's observed run;
// -trace-jsonl writes the same events — plus the migration's span tree —
// as one JSON object per line, and -metrics-out writes the sampled metric
// series as JSONL. -metrics-addr serves the registry in Prometheus text
// format at http://<addr>/metrics while the run executes (snapshots are
// published at sampler ticks; scrapes never touch simulator state), and
// -metrics-hold keeps serving the final snapshot for that many wall-clock
// seconds after the run so a scraper can collect the end state.
//
// `agilesim analyze` post-processes a span JSONL log: per migration it
// reports the critical path (segments exactly tiling the migration
// window), downtime attribution against the VM-stopped window,
// demand-fault latency percentiles, and wasted work (retried faults,
// refuted prefetch windows); -prom instead validates a Prometheus
// exposition file with a strict text-format 0.0.4 parser.
//
// -scale 1.0 reproduces the paper's sizes (10 GB VMs, 23 GB hosts) and
// takes several wall-clock minutes; -scale 0.25 preserves every shape at a
// quarter of the size and a fraction of the cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"

	"agilemig/internal/cluster"
	"agilemig/internal/core"
	"agilemig/internal/dist"
	"agilemig/internal/experiments"
	"agilemig/internal/host"
	"agilemig/internal/metrics"
	"agilemig/internal/report"
	"agilemig/internal/sim"
	"agilemig/internal/trace"
	"agilemig/internal/workload"
)

// writeNamedFile creates path and runs write against it, exiting on error.
func writeNamedFile(path string, write func(f *os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agilesim:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "agilesim:", err)
		os.Exit(1)
	}
}

func main() {
	// `agilesim analyze` is a subcommand with its own flags; dispatch it
	// before the main flag set sees the arguments.
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	scale := flag.Float64("scale", 0.25, "size/time scale factor (1.0 = paper scale)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	csvPath := flag.String("csv", "", "also write timeline series as CSV to this file")
	parallel := flag.Int("parallel", 0, "experiment-point workers (0 = all cores, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
	traceJSONL := flag.String("trace-jsonl", "", "write the trace as JSON lines to this file")
	metricsOut := flag.String("metrics-out", "", "write sampled metric series as JSON lines to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text-format metrics at http://<addr>/metrics during the quickstart (use 127.0.0.1:port)")
	metricsHold := flag.Float64("metrics-hold", 0, "keep serving the final /metrics snapshot this many seconds after the run")
	traceBuf := flag.Int("trace-buf", trace.DefaultBusCapacity, "trace ring-buffer capacity (events)")
	faults := flag.String("faults", "", "fault schedule for quickstart runs (crash:<srv>@<t>[+<d>],linkdown:<nic>@<t>[+<d>],loss:<nic>@<t>[+<d>][=<rate>])")
	replicas := flag.Int("replicas", 0, "VMD replication factor for quickstart runs; for recovery, run only this K (0/1 = off)")
	shards := flag.Int("shards", 1, "parallel-kernel shard count (1 = serial engine); results are byte-identical at any value")
	cells := flag.Int("cells", 0, "fleet experiment: migration cells (2 hosts each; 0 = default 32)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: agilesim [-scale f] [-seed n] [-csv file] [-parallel n] [-shards n] [-faults plan] [-replicas k] [-trace-out file] [-trace-jsonl file] [-metrics-out file] [-metrics-addr host:port] [-metrics-hold s] [-cpuprofile file] [-memprofile file] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: fig4 fig5 fig6 fig7 fig8 tables fig9 fig10 ablation quickstart recovery vmdsweep fleet drain demo report all\n")
		fmt.Fprintf(os.Stderr, "       agilesim analyze -spans file.jsonl [-csv out.csv] | analyze -prom metrics.txt\n")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	id := flag.Arg(0)
	out := os.Stdout

	// A batch simulator with a small live set and a high allocation rate:
	// let the heap grow further between collections unless the user tuned
	// GC themselves.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(800)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agilesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "agilesim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agilesim:", err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim:", err)
			}
			f.Close()
		}()
	}

	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agilesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	runFig := func(tech core.Technique) {
		cfg := experiments.DefaultPressureConfig(tech)
		cfg.Scale = *scale
		cfg.Seed = *seed
		r := experiments.RunPressureTimeline(cfg)
		r.Print(out)
		if csvOut != nil {
			if err := r.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: csv:", err)
			}
		}
	}
	runSweep := func() {
		cfg := experiments.DefaultSizeSweepConfig()
		cfg.Scale = *scale
		cfg.Seed = *seed
		cfg.Parallelism = *parallel
		cfg.Shards = *shards
		rows := experiments.RunSizeSweep(cfg)
		experiments.PrintSizeSweep(out, rows)
	}
	runTables := func() {
		results := experiments.RunAppPerfTables(*scale, *seed, *parallel)
		experiments.PrintAppPerfTables(out, results)
	}
	runWSS := func() {
		cfg := experiments.DefaultWSSTrackConfig()
		cfg.Scale = *scale
		cfg.Seed = *seed
		r := experiments.RunWSSTracking(cfg)
		r.Print(out)
		if csvOut != nil {
			if err := r.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: csv:", err)
			}
		}
	}
	runAblation := func() {
		push := experiments.RunAblationActivePush(*scale, *seed)
		remote := experiments.RunAblationRemoteSwap(*scale, *seed, *parallel)
		placement := experiments.RunAblationPlacement(*seed, *parallel)
		watermark := experiments.RunAblationWatermark(*seed, *parallel)
		experiments.PrintAblations(out, push, remote, placement, watermark)
		experiments.PrintAutoConverge(out, experiments.RunAblationAutoConverge(*scale, *seed, *parallel))
		experiments.PrintScatterEviction(out, experiments.RunScatterEviction(*scale, *seed))
	}

	runDemo := func() {
		// A single traced Agile migration, printing the Migration
		// Manager's event log.
		cfg := cluster.DefaultConfig()
		cfg.HostRAMBytes = int64(float64(6*cluster.GiB) * *scale * 4)
		cfg.IntermediateRAMBytes = int64(float64(16*cluster.GiB) * *scale * 4)
		tb := cluster.New(cfg)
		h := tb.DeployVM("demo", int64(float64(2*cluster.GiB)**scale*4), int64(float64(768*cluster.MiB)**scale*4), true)
		h.LoadDataset(int64(float64(1536*cluster.MiB) * *scale * 4))
		ccfg := workload.YCSB()
		ccfg.MaxOpsPerSecond = 10_000
		h.AttachClient(ccfg, dist.NewUniform(h.Store.Records()))
		tb.RunSeconds(120 * *scale * 4)
		tr := trace.New(0)
		spec := core.Spec{
			VM: h.VM, Source: tb.Source, Dest: tb.Dest,
			DestReservationBytes: h.VM.Group().ReservationBytes(),
			DestBackend:          host.VMDSwapBackend(h.NS, tb.Dest.VMDClient()),
			Namespace:            h.NS,
			Trace:                tr,
		}
		mig := core.Start(tb.Eng, tb.Net, core.Agile, spec)
		for !mig.Done() {
			tb.Eng.Step()
		}
		fmt.Fprintln(out, "Agile migration event trace:")
		fmt.Fprint(out, tr.String())
		fmt.Fprintln(out, mig.Result())
	}

	runQuickstart := func() {
		var tr *trace.Trace
		var reg *metrics.Registry
		if *traceOut != "" || *traceJSONL != "" {
			tr = trace.New(*traceBuf)
		}
		if *metricsOut != "" || *metricsAddr != "" {
			reg = metrics.NewRegistry()
		}
		var ep *metricsEndpoint
		if *metricsAddr != "" {
			var err error
			ep, err = startMetricsEndpoint(*metricsAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: -metrics-addr:", err)
				os.Exit(1)
			}
			// The hook runs on the simulation goroutine at every sampler
			// tick: render there, publish atomically, serve lock-free.
			reg.SetSampleHook(func() { ep.publish(reg) })
		}
		cfg := experiments.DefaultQuickstartConfig()
		cfg.Scale = *scale
		cfg.Seed = *seed
		cfg.Trace = tr
		cfg.Metrics = reg
		cfg.Replicas = *replicas
		cfg.Shards = *shards
		if *faults != "" {
			plan, err := sim.ParseFaultPlan(*faults)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: -faults:", err)
				os.Exit(2)
			}
			cfg.Faults = plan
		}
		results := experiments.RunQuickstart(cfg)

		table := metrics.NewTable(
			fmt.Sprintf("Migrating a %.1f GiB VM under load (scale %.2f)", 2**scale, *scale),
			"technique", "total (s)", "downtime (s)", "data (MB)", "cold pages by reference")
		var observed *experiments.QuickstartResult
		for i := range results {
			r := results[i].Result
			table.AddF(r.Technique.String(),
				fmt.Sprintf("%.1f", r.TotalSeconds),
				fmt.Sprintf("%.3f", r.DowntimeSeconds),
				fmt.Sprintf("%.0f", float64(r.BytesTransferred)/1e6),
				r.OffsetRecords)
			if r.Technique == cfg.ObserveTechnique {
				observed = &results[i]
			}
		}
		fmt.Fprint(out, table.String())
		if observed != nil && (tr != nil || reg != nil) {
			fmt.Fprintln(out)
			report.Summary(out, observed.Testbed, tr)
		} else if observed != nil {
			// No observability sinks: still surface the far-memory store's
			// counters (retries, spills, failover reads, prefetch hit-rate).
			fmt.Fprintln(out)
			report.VMDSummary(out, observed.Testbed)
		}
		if tr != nil {
			if d := tr.Drops(); d > 0 {
				fmt.Fprintf(os.Stderr, "agilesim: trace ring dropped %d events; rerun with -trace-buf %d or larger\n",
					d, tr.Cap()*2)
			}
			if d := tr.SpanDrops(); d > 0 {
				fmt.Fprintf(os.Stderr, "agilesim: span store dropped %d newest spans; rerun with -trace-buf %d or larger\n",
					d, tr.SpanCap()*2)
			}
			writeFile := func(path string, write func(f *os.File) error) {
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "agilesim:", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := write(f); err != nil {
					fmt.Fprintln(os.Stderr, "agilesim:", err)
					os.Exit(1)
				}
			}
			if *traceOut != "" {
				writeFile(*traceOut, func(f *os.File) error { return trace.WriteChromeTrace(f, tr) })
			}
			if *traceJSONL != "" {
				writeFile(*traceJSONL, func(f *os.File) error { return trace.WriteJSONL(f, tr) })
			}
		}
		if reg != nil && *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agilesim:", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := reg.WriteJSONL(f); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim:", err)
				os.Exit(1)
			}
		}
		if ep != nil {
			ep.holdAndClose(reg, *metricsHold)
		}
	}

	runFleet := func() {
		opt := experiments.DefaultFleetOptions()
		opt.Cells = *cells
		opt.Shards = *shards
		opt.Seed = *seed
		opt.Scale = *scale
		opt.Observe = *traceJSONL != "" || *metricsOut != ""
		opt.TraceCapacity = *traceBuf
		rep := experiments.RunFleet(opt)
		experiments.PrintFleet(out, rep)

		writeFile := func(path string, write func(f *os.File) error) {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agilesim:", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := write(f); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim:", err)
				os.Exit(1)
			}
		}
		if csvOut != nil {
			if err := experiments.WriteFleetCSV(csvOut, rep.Rows); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: csv:", err)
			}
		}
		if *traceJSONL != "" {
			// The canonical (T, scope, actor) merge of the per-cell rings
			// and span stores: byte-identical at any -shards and GOMAXPROCS.
			writeFile(*traceJSONL, func(f *os.File) error {
				return trace.WriteEventsSpansJSONL(f,
					rep.Fleet.MergedTraceEvents(), rep.Fleet.MergedSpans(),
					rep.Fleet.TraceDrops(), rep.Fleet.SpanDrops(), rep.Fleet.OpenSpans())
			})
			if d := rep.Fleet.SpanDrops(); d > 0 {
				fmt.Fprintf(os.Stderr, "agilesim: fleet span stores dropped %d newest spans; rerun with -trace-buf larger\n", d)
			}
		}
		if *metricsOut != "" {
			// Per-cell registries concatenated in cell order, equally
			// placement-independent.
			writeFile(*metricsOut, func(f *os.File) error {
				for i := 0; i < len(rep.Rows); i++ {
					if err := rep.Fleet.CellRegistry(i).WriteJSONL(f); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}

	runDrain := func() {
		opt := experiments.DefaultDrainOptions()
		opt.Scale = *scale
		opt.Seed = *seed
		opt.Shards = *shards
		opt.RackShards = *shards
		if *cells > 0 {
			opt.RackCells = *cells
		}
		opt.Observe = *traceJSONL != "" || *metricsOut != ""
		opt.TraceCapacity = *traceBuf
		rep := experiments.RunDrain(opt)
		experiments.PrintDrain(out, rep)
		if csvOut != nil {
			if err := experiments.WriteDrainCSV(csvOut, rep); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: csv:", err)
			}
		}
		if *traceJSONL != "" || *metricsOut != "" {
			// One stream per policy run, suffixed with the policy name so
			// both drains stay inspectable side by side.
			for _, p := range rep.Policies {
				if *traceJSONL != "" {
					writeNamedFile(*traceJSONL+"."+p.Policy, func(f *os.File) error {
						return trace.WriteEventsSpansJSONL(f, p.Trace.Events(), p.Trace.Spans(),
							p.Trace.Drops(), p.Trace.SpanDrops(), p.Trace.OpenSpans())
					})
				}
				if *metricsOut != "" {
					writeNamedFile(*metricsOut+"."+p.Policy, func(f *os.File) error {
						return p.Registry.WriteJSONL(f)
					})
				}
			}
		}
	}

	if id != "quickstart" && id != "fleet" && id != "drain" && (*traceOut != "" || *traceJSONL != "" || *metricsOut != "") {
		fmt.Fprintln(os.Stderr, "agilesim: -trace-out/-trace-jsonl/-metrics-out attach to the quickstart, fleet and drain experiments; ignoring")
	}
	if (id == "fleet" || id == "drain") && *traceOut != "" {
		fmt.Fprintln(os.Stderr, "agilesim: -trace-out (Chrome trace) attaches to the quickstart experiment; fleet/drain write -trace-jsonl; ignoring")
	}
	if id != "quickstart" && (*metricsAddr != "" || *metricsHold > 0) {
		fmt.Fprintln(os.Stderr, "agilesim: -metrics-addr/-metrics-hold attach to the quickstart experiment; ignoring")
	}
	if id != "quickstart" && *faults != "" {
		fmt.Fprintln(os.Stderr, "agilesim: -faults attaches to the quickstart experiment (recovery has its own schedule); ignoring")
	}
	if id != "quickstart" && id != "recovery" && *replicas > 1 {
		fmt.Fprintln(os.Stderr, "agilesim: -replicas attaches to the quickstart and recovery experiments; ignoring")
	}

	switch id {
	case "fig4":
		runFig(core.PreCopy)
	case "fig5":
		runFig(core.PostCopy)
	case "fig6":
		runFig(core.Agile)
	case "fig7", "fig8":
		runSweep()
	case "table1", "table2", "table3", "tables":
		runTables()
	case "fig9", "fig10":
		runWSS()
	case "ablation", "ablations":
		runAblation()
	case "quickstart":
		runQuickstart()
	case "recovery":
		rcfg := experiments.DefaultRecoveryConfig()
		rcfg.Scale = *scale
		rcfg.Seed = *seed
		// -replicas narrows the K=1-vs-K=2 comparison to a single factor
		// (CI byte-diffs the K=2 run on its own).
		if *replicas > 1 {
			rcfg.ReplicaFactors = []int{*replicas}
		}
		rcfg.Shards = *shards
		experiments.PrintRecovery(out, experiments.RunRecovery(rcfg))
	case "vmdsweep":
		vcfg := experiments.DefaultVMDSweepConfig()
		vcfg.Scale = *scale
		vcfg.Seed = *seed
		vcfg.Shards = *shards
		experiments.PrintVMDSweep(out, experiments.RunVMDSweep(vcfg))
	case "fleet":
		runFleet()
	case "drain":
		runDrain()
	case "demo", "trace":
		runDemo()
	case "report":
		report.Generate(out, report.Options{Scale: *scale, Seed: *seed, Parallelism: *parallel,
			Pressure: true, Sweep: true, Tables: true, WSS: true, Ablation: true})
	case "all":
		// The three pressure timelines are independent scenarios: run them
		// through the fan-out harness, then print in figure order.
		cfg := experiments.DefaultPressureConfig(core.PreCopy)
		cfg.Scale = *scale
		cfg.Seed = *seed
		for _, r := range experiments.RunPressureTechniques(cfg,
			[]core.Technique{core.PreCopy, core.PostCopy, core.Agile}, *parallel) {
			r.Print(out)
			if csvOut != nil {
				if err := r.WriteCSV(csvOut); err != nil {
					fmt.Fprintln(os.Stderr, "agilesim: csv:", err)
				}
			}
		}
		runSweep()
		runTables()
		runWSS()
		runAblation()
	default:
		fmt.Fprintf(os.Stderr, "agilesim: unknown experiment %q\n", id)
		flag.Usage()
		os.Exit(2)
	}
}
