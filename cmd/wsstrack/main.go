// Command wsstrack demonstrates the transparent working-set tracker of
// §IV-D on a single live VM: it prints the reservation, the actual
// resident set, the per-VM swap rate and the application throughput as the
// tracker converges — the live view behind Figures 9 and 10.
package main

import (
	"flag"
	"fmt"
	"os"

	"agilemig/internal/cluster"
	"agilemig/internal/dist"
	"agilemig/internal/mem"
	"agilemig/internal/workload"
	"agilemig/internal/wss"
)

func main() {
	scale := flag.Float64("scale", 0.25, "size/time scale factor (1.0 = paper scale)")
	seconds := flag.Float64("seconds", 600, "simulated duration (scaled)")
	alpha := flag.Float64("alpha", 0.95, "shrink factor α")
	beta := flag.Float64("beta", 1.03, "grow factor β")
	tau := flag.Float64("tau", 4096, "swap-rate threshold τ (bytes/s)")
	flag.Parse()

	cfg := cluster.DefaultConfig()
	cfg.HostRAMBytes = int64(float64(128*cluster.GiB) * *scale)
	cfg.IntermediateRAMBytes = int64(float64(32*cluster.GiB) * *scale)
	tb := cluster.New(cfg)

	vmMem := int64(float64(5*cluster.GiB) * *scale)
	dataset := int64(float64(1536*cluster.MiB) * *scale)
	h := tb.DeployVM("vm1", vmMem, vmMem, true)
	h.LoadDataset(dataset)
	ccfg := workload.YCSB()
	ccfg.MaxOpsPerSecond = 20_000
	h.AttachClient(ccfg, dist.NewUniform(h.Store.Records()))
	tb.RunSeconds(30 * *scale)

	tcfg := wss.DefaultTrackerConfig()
	tcfg.Alpha, tcfg.Beta, tcfg.TauBytesPerSec = *alpha, *beta, *tau
	tcfg.FastInterval *= *scale
	tcfg.SlowInterval *= *scale
	tracker := h.TrackWSS(tcfg)

	fmt.Printf("tracking %s: memory %d MiB, dataset %d MiB, α=%.2f β=%.2f τ=%.0f B/s\n",
		h.VM.Name(), vmMem/cluster.MiB, dataset/cluster.MiB, *alpha, *beta, *tau)
	fmt.Printf("%8s %14s %12s %12s %8s\n", "t(s)", "reservation", "resident", "ops/s", "stable")

	var lastOps int64
	step := 10 * *scale
	for t := 0.0; t < *seconds**scale; t += step {
		tb.RunSeconds(step)
		ops := h.Client.OpsCompleted()
		rate := float64(ops-lastOps) / step
		lastOps = ops
		fmt.Printf("%8.0f %11d MiB %8d MiB %12.0f %8v\n",
			tb.Eng.NowSeconds(),
			h.VM.Group().ReservationBytes()/cluster.MiB,
			mem.PagesToBytes(h.VM.Table().InRAM())/cluster.MiB,
			rate, tracker.Stable())
	}
	fmt.Printf("\nfinal working-set estimate: %d MiB (dataset %d MiB)\n",
		tracker.EstimateBytes()/cluster.MiB, dataset/cluster.MiB)
	if os.Getenv("WSSTRACK_EXIT_SILENT") == "" {
		fmt.Println("done")
	}
}
