// Agilelint is the repository's static-analysis suite: nine analyzers
// that prove determinism and simulation hygiene at compile time — six
// syntax-level checks plus the flow-sensitive v2 passes (dettaint,
// phasecheck, outcomecheck) over the ctrlflow CFG (DESIGN.md
// §"Statically enforced invariants").
//
// Standalone:
//
//	go run ./cmd/agilelint ./...
//
// As a vet tool (what CI runs, and what editors integrate with):
//
//	go build -o agilelint ./cmd/agilelint
//	go vet -vettool=./agilelint ./...
package main

import (
	"golang.org/x/tools/go/analysis/multichecker"

	"agilemig/internal/analyzers"
)

func main() {
	multichecker.Main(analyzers.All()...)
}
