// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The default scale is 0.1 (a tenth of the
// paper's memory sizes and timeline, preserving every shape); set
// AGILEMIG_BENCH_SCALE=1.0 to run at full paper scale (several wall-clock
// minutes per figure).
package agilemig

import (
	"os"
	"strconv"
	"testing"

	"agilemig/internal/cluster"
	"agilemig/internal/core"
	"agilemig/internal/experiments"
)

func benchScale() float64 {
	if s := os.Getenv("AGILEMIG_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// benchPressure runs the Figures 4-6 timeline for one technique.
func benchPressure(b *testing.B, tech core.Technique) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultPressureConfig(tech)
		cfg.Scale = benchScale()
		cfg.Seed = uint64(i + 1)
		r := experiments.RunPressureTimeline(cfg)
		if r.Migration != nil {
			b.ReportMetric(r.Migration.TotalSeconds, "migration-s")
			b.ReportMetric(float64(r.Migration.BytesTransferred)/1e6, "MB-transferred")
		}
		if r.RecoverySeconds > 0 {
			b.ReportMetric(r.RecoverySeconds, "recovery-s")
		}
		b.ReportMetric(r.PeakOps, "peak-ops/s")
	}
}

// BenchmarkFig4PressureTimelinePrecopy regenerates Figure 4: average YCSB
// throughput across 4 VMs while one migrates with pre-copy.
func BenchmarkFig4PressureTimelinePrecopy(b *testing.B) { benchPressure(b, core.PreCopy) }

// BenchmarkFig5PressureTimelinePostcopy regenerates Figure 5 (post-copy).
func BenchmarkFig5PressureTimelinePostcopy(b *testing.B) { benchPressure(b, core.PostCopy) }

// BenchmarkFig6PressureTimelineAgile regenerates Figure 6 (Agile), whose
// recovery time is the paper's headline (215 s vs 533/294 s).
func BenchmarkFig6PressureTimelineAgile(b *testing.B) { benchPressure(b, core.Agile) }

// sweepSizes returns a reduced sweep for benchmarking (the end points and
// the host-size crossover that define the figures' shape).
func sweepSizes() []int64 {
	return []int64{2 * cluster.GiB, 6 * cluster.GiB, 12 * cluster.GiB}
}

// BenchmarkFig7MigrationTimeVsSize regenerates Figure 7: total migration
// time for an idle and a busy VM as the VM outgrows the 6 GB host.
func BenchmarkFig7MigrationTimeVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultSizeSweepConfig()
		cfg.Scale = benchScale()
		cfg.VMSizes = sweepSizes()
		rows := experiments.RunSizeSweep(cfg)
		for _, r := range rows {
			if r.VMBytes == 12*cluster.GiB && r.Completed() {
				b.ReportMetric(r.TotalSeconds, r.Technique.String()+"-12GB-s")
			}
		}
	}
}

// BenchmarkFig8DataVsSize regenerates Figure 8: data transferred vs VM
// size — linear for pre-/post-copy, flat past the host size for Agile.
func BenchmarkFig8DataVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultSizeSweepConfig()
		cfg.Scale = benchScale()
		cfg.VMSizes = sweepSizes()
		cfg.Busy = false // idle variant isolates the data-volume shape
		rows := experiments.RunSizeSweep(cfg)
		for _, r := range rows {
			if r.VMBytes == 12*cluster.GiB {
				b.ReportMetric(r.DataMB, r.Technique.String()+"-12GB-MB")
			}
		}
	}
}

// benchAppPerf runs one Tables I-III cell and reports all three numbers.
func benchAppPerf(b *testing.B, wk experiments.WorkloadKind, tech core.Technique) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.RunAppPerf(experiments.AppPerfConfig{
			Workload: wk, Technique: tech, Scale: benchScale(), Seed: uint64(i + 1),
		})
		b.ReportMetric(r.AvgOpsPerSec, "tableI-ops/s")
		if r.Migration != nil {
			b.ReportMetric(r.Migration.TotalSeconds, "tableII-s")
			b.ReportMetric(float64(r.Migration.BytesTransferred)/1e6, "tableIII-MB")
		}
	}
}

// BenchmarkTable1YCSBPrecopy .. BenchmarkTable1SysbenchAgile regenerate the
// six cells of Tables I, II and III (each run yields all three tables'
// numbers for its cell).
func BenchmarkTable1YCSBPrecopy(b *testing.B) {
	benchAppPerf(b, experiments.WorkloadYCSB, core.PreCopy)
}

// BenchmarkTable1YCSBPostcopy is the YCSB/post-copy cell.
func BenchmarkTable1YCSBPostcopy(b *testing.B) {
	benchAppPerf(b, experiments.WorkloadYCSB, core.PostCopy)
}

// BenchmarkTable1YCSBAgile is the YCSB/Agile cell.
func BenchmarkTable1YCSBAgile(b *testing.B) {
	benchAppPerf(b, experiments.WorkloadYCSB, core.Agile)
}

// BenchmarkTable1SysbenchPrecopy is the Sysbench/pre-copy cell.
func BenchmarkTable1SysbenchPrecopy(b *testing.B) {
	benchAppPerf(b, experiments.WorkloadSysbench, core.PreCopy)
}

// BenchmarkTable1SysbenchPostcopy is the Sysbench/post-copy cell.
func BenchmarkTable1SysbenchPostcopy(b *testing.B) {
	benchAppPerf(b, experiments.WorkloadSysbench, core.PostCopy)
}

// BenchmarkTable1SysbenchAgile is the Sysbench/Agile cell.
func BenchmarkTable1SysbenchAgile(b *testing.B) {
	benchAppPerf(b, experiments.WorkloadSysbench, core.Agile)
}

// BenchmarkFig9WSSTracking regenerates Figure 9: the tracker walking the
// reservation down to the VM's 1.5 GB working set.
func BenchmarkFig9WSSTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultWSSTrackConfig()
		cfg.Scale = benchScale()
		cfg.Seed = uint64(i + 1)
		r := experiments.RunWSSTracking(cfg)
		b.ReportMetric(r.FinalReservationMB, "final-reservation-MB")
		b.ReportMetric(r.DatasetMB, "working-set-MB")
	}
}

// BenchmarkFig10WSSThroughput regenerates Figure 10: YCSB throughput while
// the reservation adapts (transient dips, quick recovery).
func BenchmarkFig10WSSThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultWSSTrackConfig()
		cfg.Scale = benchScale()
		cfg.Seed = uint64(i + 1)
		r := experiments.RunWSSTracking(cfg)
		b.ReportMetric(r.MeanThroughputAfterConvergence, "steady-ops/s")
		b.ReportMetric(r.PeakThroughput, "peak-ops/s")
	}
}

// BenchmarkAblationActivePush quantifies why Agile pushes actively instead
// of relying on demand paging alone.
func BenchmarkAblationActivePush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationActivePush(benchScale(), uint64(i+1))
		b.ReportMetric(r.WithPushSeconds, "with-push-s")
		b.ReportMetric(float64(r.WithoutPushResidualPages), "demand-only-residual-pages")
	}
}

// BenchmarkAblationRemoteSwap quantifies the portable per-VM swap device's
// contribution (vs the VMware-style host-local swap).
func BenchmarkAblationRemoteSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationRemoteSwap(benchScale(), uint64(i+1))
		b.ReportMetric(r.AgileSeconds, "agile-s")
		b.ReportMetric(r.NoRemoteSecs, "no-remote-swap-s")
		b.ReportMetric(r.AgileMB, "agile-MB")
		b.ReportMetric(r.NoRemoteMB, "no-remote-swap-MB")
	}
}

// BenchmarkAblationPlacement compares load-aware and blind VMD placement.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationPlacement(uint64(i + 1))
		b.ReportMetric(float64(r.LoadAwareRetries), "load-aware-retries")
		b.ReportMetric(float64(r.BlindRetries), "blind-retries")
	}
}

// BenchmarkScatterGatherEviction measures source-eviction time with a
// constrained (quarter-speed) destination: the scenario the scatter-gather
// technique exists for.
func BenchmarkScatterGatherEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunScatterEviction(benchScale(), uint64(i+1))
		for _, r := range rows {
			b.ReportMetric(r.EvictSeconds, r.Technique.String()+"-evict-s")
		}
	}
}

// BenchmarkAblationAutoConverge compares pre-copy with and without
// SDPS-style vCPU throttling on a write-heavy VM.
func BenchmarkAblationAutoConverge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationAutoConverge(benchScale(), uint64(i+1))
		b.ReportMetric(r.BaselineSeconds, "baseline-s")
		b.ReportMetric(r.ThrottledSeconds, "throttled-s")
		b.ReportMetric(r.BaselineOpsRate, "baseline-ops/s")
		b.ReportMetric(r.ThrottledOpsRate, "throttled-ops/s")
	}
}

// BenchmarkAblationWatermark measures trigger behaviour across watermark
// gaps.
func BenchmarkAblationWatermark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAblationWatermark(uint64(i + 1))
		for _, r := range rows {
			b.ReportMetric(float64(r.Fired), "fired-gap"+strconv.FormatInt(r.GapBytes>>30, 10)+"GiB")
		}
	}
}
